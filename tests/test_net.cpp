// csg::net — wire codec, golden frame fixtures, corrupt-frame rejection,
// and the NetServer/NetClient loop over the deterministic loopback
// transport (plus a real-TCP smoke test).
//
// Registered under the `parallel` ctest label: the server runs an accept
// thread plus one handler thread per connection on top of the EvalService
// worker pool, so the TSan lane must see the whole stack.
//
// Golden fixtures live in tests/net_fixtures/*.bin and freeze the v1 wire
// layout byte for byte. When the layout changes *intentionally*, bump
// kVersion and regenerate:
//   CSG_NET_FIXTURE_REGEN=1 ./tests/test_net --gtest_filter='*Golden*'
#include "csg/net/protocol.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/net/client.hpp"
#include "csg/net/server.hpp"
#include "csg/net/transport.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"
#include "csg/testing/property.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::net {
namespace {

using csg::testing::PropertyConfig;
using csg::testing::PropertyResult;
using csg::testing::run_property;

CompactStorage make_grid(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::parabola_product(d).f);
  hierarchize(s);
  return s;
}

/// Registry + running service + loopback server: the in-process serving
/// stack every e2e test talks to.
struct LoopbackStack {
  serve::GridRegistry registry;
  std::optional<serve::EvalService> service;
  LoopbackListener listener;
  std::optional<NetServer> server;

  explicit LoopbackStack(NetServerOptions opts = {},
                         serve::ServiceOptions service_opts = {}) {
    registry.add("g0", make_grid(2, 4));
    registry.add("g1", make_grid(3, 3));
    service.emplace(registry, service_opts);
    server.emplace(listener, registry, *service, opts);
    server->start();
  }

  ~LoopbackStack() {
    server->stop();
    service->stop();
  }

  NetClient client(ProtocolLimits limits = {}) {
    return NetClient(listener.connect(), limits);
  }
};

/// Hand-rolled header for corruption tests: every field is explicit.
std::vector<std::uint8_t> raw_header(const std::array<char, 4>& magic,
                                     std::uint32_t endian_tag,
                                     std::uint32_t real_width,
                                     std::uint16_t version, std::uint8_t type,
                                     std::uint8_t reserved,
                                     std::uint64_t payload_bytes) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes);
  const auto put = [&out](const void* p, std::size_t n) {
    const auto at = out.size();
    out.resize(at + n);
    std::memcpy(out.data() + at, p, n);
  };
  put(magic.data(), magic.size());
  put(&endian_tag, sizeof(endian_tag));
  put(&real_width, sizeof(real_width));
  put(&version, sizeof(version));
  put(&type, sizeof(type));
  put(&reserved, sizeof(reserved));
  put(&payload_bytes, sizeof(payload_bytes));
  return out;
}

std::vector<std::uint8_t> valid_header(MsgType type,
                                       std::uint64_t payload_bytes) {
  return raw_header(kMagic, kEndianTag,
                    static_cast<std::uint32_t>(sizeof(real_t)), kVersion,
                    static_cast<std::uint8_t>(type), 0, payload_bytes);
}

struct RawFrame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Read one frame off a raw stream (loose limits: tests must be able to
/// see anything the server sends). nullopt on end-of-stream.
std::optional<RawFrame> read_frame(ByteStream& stream) {
  std::vector<std::uint8_t> head(kFrameHeaderBytes);
  if (!read_exact(stream, head.data(), head.size())) return std::nullopt;
  ProtocolLimits loose;
  loose.max_frame_bytes = ~std::uint64_t{0};
  RawFrame frame;
  if (decode_header(head, frame.header, loose) != WireError::kNone)
    return std::nullopt;
  frame.payload.resize(static_cast<std::size_t>(frame.header.payload_bytes));
  if (!frame.payload.empty() &&
      !read_exact(stream, frame.payload.data(), frame.payload.size()))
    return std::nullopt;
  return frame;
}

/// Poll for an asynchronous counter change (bounded; ~5 s worst case).
template <typename Pred>
bool eventually(Pred pred) {
  for (int k = 0; k < 500; ++k) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// --------------------------------------------------------------------------
// Codec round trips
// --------------------------------------------------------------------------

TEST(NetCodec, EvalRequestRoundTrips) {
  EvalRequest in;
  in.id = 42;
  in.grid = "temperature";
  in.deadline_us = -125;  // negative budgets are legal: expired-on-arrival
  in.points = {CoordVector{0.25, 0.5, 0.75}, CoordVector{0.125, 1.0, 0.0}};

  const auto frame = encode_eval_request(in);
  FrameHeader header;
  ASSERT_EQ(decode_header(frame, header, ProtocolLimits{}), WireError::kNone);
  EXPECT_EQ(header.type, MsgType::kEvalRequest);
  EXPECT_EQ(header.version, kVersion);
  EXPECT_EQ(header.payload_bytes, frame.size() - kFrameHeaderBytes);

  EvalRequest out;
  ASSERT_EQ(decode_eval_request(
                std::span(frame).subspan(kFrameHeaderBytes), out,
                ProtocolLimits{}),
            WireError::kNone);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.grid, in.grid);
  EXPECT_EQ(out.deadline_us, in.deadline_us);
  ASSERT_EQ(out.points.size(), in.points.size());
  for (std::size_t p = 0; p < in.points.size(); ++p) {
    ASSERT_EQ(out.points[p].size(), in.points[p].size());
    for (dim_t t = 0; t < in.points[p].size(); ++t)
      EXPECT_EQ(out.points[p][t], in.points[p][t]);
  }
}

TEST(NetCodec, EvalResponseRoundTrips) {
  EvalResponse in;
  in.id = 7;
  in.results = {{static_cast<std::uint8_t>(serve::Status::kOk), 1.5},
                {static_cast<std::uint8_t>(serve::Status::kTimeout), 0.0}};
  const auto frame = encode_eval_response(in);
  EvalResponse out;
  ASSERT_EQ(decode_eval_response(
                std::span(frame).subspan(kFrameHeaderBytes), out,
                ProtocolLimits{}),
            WireError::kNone);
  EXPECT_EQ(out.id, 7u);
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_EQ(out.results[0].status,
            static_cast<std::uint8_t>(serve::Status::kOk));
  EXPECT_EQ(out.results[0].value, 1.5);
  EXPECT_EQ(out.results[1].status,
            static_cast<std::uint8_t>(serve::Status::kTimeout));
}

TEST(NetCodec, ListStatsAndErrorRoundTrip) {
  // The two bodyless requests are bare headers.
  EXPECT_EQ(encode_list_request().size(), kFrameHeaderBytes);
  EXPECT_EQ(encode_stats_request().size(), kFrameHeaderBytes);

  ListResponse list_in;
  list_in.grids = {{"pressure", 2, 5, 129, 4128},
                   {"temperature", 3, 4, 177, 8456}};
  const auto list_frame = encode_list_response(list_in);
  ListResponse list_out;
  ASSERT_EQ(decode_list_response(
                std::span(list_frame).subspan(kFrameHeaderBytes), list_out,
                ProtocolLimits{}),
            WireError::kNone);
  ASSERT_EQ(list_out.grids.size(), 2u);
  EXPECT_EQ(list_out.grids[0].name, "pressure");
  EXPECT_EQ(list_out.grids[1].memory_bytes, 8456u);

  WireStats stats_in;
  stats_in.submitted = 1;
  stats_in.completed = 2;
  stats_in.shed_at_admission = 8;
  stats_in.eval_points = 16;
  stats_in.frames_in_flight_peak = 4;
  stats_in.pipelined_frames = 21;
  stats_in.shards = {{100, 5, 17}, {200, 0, 9}};
  const auto stats_frame = encode_stats_response(stats_in);
  WireStats stats_out;
  ASSERT_EQ(decode_stats_response(
                std::span(stats_frame).subspan(kFrameHeaderBytes), stats_out),
            WireError::kNone);
  EXPECT_EQ(stats_out.submitted, 1u);
  EXPECT_EQ(stats_out.completed, 2u);
  EXPECT_EQ(stats_out.shed_at_admission, 8u);
  EXPECT_EQ(stats_out.eval_points, 16u);
  EXPECT_EQ(stats_out.frames_in_flight_peak, 4u);
  EXPECT_EQ(stats_out.pipelined_frames, 21u);
  ASSERT_EQ(stats_out.shards.size(), 2u);
  EXPECT_EQ(stats_out.shards[0].submits, 100u);
  EXPECT_EQ(stats_out.shards[0].rejections, 5u);
  EXPECT_EQ(stats_out.shards[0].max_queue_depth, 17u);
  EXPECT_EQ(stats_out.shards[1].submits, 200u);
  EXPECT_EQ(stats_out.shards[1].max_queue_depth, 9u);

  ErrorFrame err_in;
  err_in.id = 9;
  err_in.code = static_cast<std::uint32_t>(WireError::kOversizedBatch);
  err_in.message = "batch exceeds point limit";
  const auto err_frame = encode_error(err_in);
  ErrorFrame err_out;
  ASSERT_EQ(decode_error(std::span(err_frame).subspan(kFrameHeaderBytes),
                         err_out, ProtocolLimits{}),
            WireError::kNone);
  EXPECT_EQ(err_out.id, 9u);
  EXPECT_EQ(err_out.code,
            static_cast<std::uint32_t>(WireError::kOversizedBatch));
  EXPECT_EQ(err_out.message, "batch exceeds point limit");
}

TEST(NetCodec, StatsDecoderSkipsFieldsAppendedByNewerPeers) {
  WireStats in;
  in.max_batch = 31;
  in.pipelined_frames = 7;
  in.shards = {{3, 1, 2}};
  auto frame = encode_stats_response(in);
  // Append two future fields and fix up the field count + payload length.
  const std::uint64_t extra[2] = {111, 222};
  frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(extra),
               reinterpret_cast<const std::uint8_t*>(extra) + sizeof(extra));
  std::uint32_t fields = 0;
  std::memcpy(&fields, frame.data() + kFrameHeaderBytes, sizeof(fields));
  fields += 2;
  std::memcpy(frame.data() + kFrameHeaderBytes, &fields, sizeof(fields));
  const std::uint64_t payload = frame.size() - kFrameHeaderBytes;
  std::memcpy(frame.data() + kFrameHeaderBytes - sizeof(payload), &payload,
              sizeof(payload));

  WireStats out;
  ASSERT_EQ(decode_stats_response(
                std::span(frame).subspan(kFrameHeaderBytes), out),
            WireError::kNone);
  EXPECT_EQ(out.max_batch, 31u);
  EXPECT_EQ(out.pipelined_frames, 7u);
  ASSERT_EQ(out.shards.size(), 1u);
  EXPECT_EQ(out.shards[0].max_queue_depth, 2u);
}

TEST(NetCodec, StatsDecoderHandlesLegacyAndBrokenShardSections) {
  // A v1 frame (exactly 16 fields, no appended section): the decoder must
  // accept it and leave the appended fields at their defaults.
  WireStats in;
  in.submitted = 5;
  in.shards = {{1, 2, 3}};
  auto frame = encode_stats_response(in);
  const std::uint32_t legacy_fields = kStatsFieldCount;
  std::memcpy(frame.data() + kFrameHeaderBytes, &legacy_fields,
              sizeof(legacy_fields));
  frame.resize(kFrameHeaderBytes + sizeof(std::uint32_t) +
               kStatsFieldCount * sizeof(std::uint64_t));
  std::uint64_t payload = frame.size() - kFrameHeaderBytes;
  std::memcpy(frame.data() + kFrameHeaderBytes - sizeof(payload), &payload,
              sizeof(payload));
  WireStats out;
  ASSERT_EQ(decode_stats_response(
                std::span(frame).subspan(kFrameHeaderBytes), out),
            WireError::kNone);
  EXPECT_EQ(out.submitted, 5u);
  EXPECT_EQ(out.frames_in_flight_peak, 0u);
  EXPECT_TRUE(out.shards.empty());

  // A shard count claiming more triples than the declared field count
  // carries is structurally broken, not a spin or an overread.
  auto bad = encode_stats_response(in);
  const std::uint64_t huge = ~std::uint64_t{0};
  const std::size_t count_at = kFrameHeaderBytes + sizeof(std::uint32_t) +
                               (kStatsFieldCount + 2) * sizeof(std::uint64_t);
  std::memcpy(bad.data() + count_at, &huge, sizeof(huge));
  WireStats bad_out;
  EXPECT_EQ(decode_stats_response(
                std::span(bad).subspan(kFrameHeaderBytes), bad_out),
            WireError::kBadPayload);
}

// --------------------------------------------------------------------------
// Golden fixtures: the committed v1 frame bytes
// --------------------------------------------------------------------------

struct GoldenFixture {
  const char* name;
  std::vector<std::uint8_t> bytes;
};

std::vector<GoldenFixture> golden_fixtures() {
  EvalRequest req;
  req.id = 7;
  req.grid = "temperature";
  req.deadline_us = 2500;
  req.points = {CoordVector{0.25, 0.5, 0.75}, CoordVector{0.125, 1.0, 0.0}};

  EvalResponse resp;
  resp.id = 7;
  resp.results = {{static_cast<std::uint8_t>(serve::Status::kOk), 1.5},
                  {static_cast<std::uint8_t>(serve::Status::kTimeout), 0.0}};

  ListResponse list;
  list.grids = {{"pressure", 2, 5, 129, 4128},
                {"temperature", 3, 4, 177, 8456}};

  WireStats stats;
  stats.submitted = 1;
  stats.completed = 2;
  stats.rejected = 3;
  stats.timed_out = 4;
  stats.cancelled = 5;
  stats.not_found = 6;
  stats.invalid = 7;
  stats.shed_at_admission = 8;
  stats.batches_formed = 9;
  stats.batched_points = 10;
  stats.max_batch = 11;
  stats.connections_accepted = 12;
  stats.frames_decoded = 13;
  stats.frames_rejected = 14;
  stats.eval_requests = 15;
  stats.eval_points = 16;
  stats.frames_in_flight_peak = 17;
  stats.pipelined_frames = 18;
  stats.shards = {{19, 20, 21}, {22, 23, 24}};

  ErrorFrame err;
  err.id = 9;
  err.code = static_cast<std::uint32_t>(WireError::kOversizedBatch);
  err.message = "batch exceeds point limit";

  return {{"eval_request", encode_eval_request(req)},
          {"eval_response", encode_eval_response(resp)},
          {"list_request", encode_list_request()},
          {"list_response", encode_list_response(list)},
          {"stats_request", encode_stats_request()},
          {"stats_response", encode_stats_response(stats)},
          {"error", encode_error(err)}};
}

TEST(NetGolden, CommittedFixtureFramesAreByteExact) {
  const std::string dir = CSG_NET_FIXTURE_DIR;
  const bool regen = std::getenv("CSG_NET_FIXTURE_REGEN") != nullptr;
  for (const GoldenFixture& fixture : golden_fixtures()) {
    const std::string path = dir + "/" + fixture.name + ".bin";
    if (regen) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << path;
      out.write(reinterpret_cast<const char*>(fixture.bytes.data()),
                static_cast<std::streamsize>(fixture.bytes.size()));
      ASSERT_TRUE(out.good()) << path;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing fixture " << path
                           << " (CSG_NET_FIXTURE_REGEN=1 regenerates)";
    std::vector<std::uint8_t> disk(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(disk, fixture.bytes)
        << fixture.name << ": committed frame and encoder disagree — either "
        << "an accidental wire break, or bump kVersion and regenerate";
  }
  if (regen) GTEST_SKIP() << "fixtures regenerated, nothing verified";
}

TEST(NetGolden, FixtureFramesDecodeBackToTheirMessages) {
  // The frozen bytes are not just stable, they still decode: a fixture
  // mismatch therefore always means an encoder change, not fixture rot.
  for (const GoldenFixture& fixture : golden_fixtures()) {
    FrameHeader header;
    ASSERT_EQ(decode_header(fixture.bytes, header, ProtocolLimits{}),
              WireError::kNone)
        << fixture.name;
    const auto payload = std::span(fixture.bytes).subspan(kFrameHeaderBytes);
    ASSERT_EQ(payload.size(), header.payload_bytes) << fixture.name;
    switch (header.type) {
      case MsgType::kEvalRequest: {
        EvalRequest m;
        EXPECT_EQ(decode_eval_request(payload, m, ProtocolLimits{}),
                  WireError::kNone);
        EXPECT_EQ(m.grid, "temperature");
        break;
      }
      case MsgType::kEvalResponse: {
        EvalResponse m;
        EXPECT_EQ(decode_eval_response(payload, m, ProtocolLimits{}),
                  WireError::kNone);
        EXPECT_EQ(m.results.size(), 2u);
        break;
      }
      case MsgType::kListResponse: {
        ListResponse m;
        EXPECT_EQ(decode_list_response(payload, m, ProtocolLimits{}),
                  WireError::kNone);
        EXPECT_EQ(m.grids.size(), 2u);
        break;
      }
      case MsgType::kStatsResponse: {
        WireStats m;
        EXPECT_EQ(decode_stats_response(payload, m), WireError::kNone);
        EXPECT_EQ(m.eval_points, 16u);
        break;
      }
      case MsgType::kError: {
        ErrorFrame m;
        EXPECT_EQ(decode_error(payload, m, ProtocolLimits{}),
                  WireError::kNone);
        EXPECT_EQ(m.code,
                  static_cast<std::uint32_t>(WireError::kOversizedBatch));
        break;
      }
      default:
        EXPECT_EQ(header.payload_bytes, 0u) << fixture.name;
    }
  }
}

// --------------------------------------------------------------------------
// Header and payload rejection, one corruption at a time
// --------------------------------------------------------------------------

TEST(NetReject, HeaderNamesTheFirstCorruptedField) {
  const ProtocolLimits limits;
  FrameHeader h;
  const auto ok = valid_header(MsgType::kListRequest, 0);
  ASSERT_EQ(decode_header(ok, h, limits), WireError::kNone);

  EXPECT_EQ(decode_header(std::span(ok).first(kFrameHeaderBytes - 1), h,
                          limits),
            WireError::kTruncated);
  EXPECT_EQ(decode_header(raw_header({'C', 'S', 'G', 'V'}, kEndianTag,
                                     sizeof(real_t), kVersion, 3, 0, 0),
            h, limits),
            WireError::kBadMagic);
  EXPECT_EQ(decode_header(raw_header(kMagic, 0x04030201u, sizeof(real_t),
                                     kVersion, 3, 0, 0),
            h, limits),
            WireError::kBadEndianness);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, 4, kVersion, 3, 0, 0),
                          h, limits),
            WireError::kBadRealWidth);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, sizeof(real_t), 2, 3,
                                     0, 0),
            h, limits),
            WireError::kBadVersion);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, sizeof(real_t),
                                     kVersion, 3, 0xAB, 0),
            h, limits),
            WireError::kBadReserved);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, sizeof(real_t),
                                     kVersion, 3, 0,
                                     limits.max_frame_bytes + 1),
            h, limits),
            WireError::kOversizedFrame);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, sizeof(real_t),
                                     kVersion, 99, 0, 0),
            h, limits),
            WireError::kBadType);
  EXPECT_EQ(decode_header(raw_header(kMagic, kEndianTag, sizeof(real_t),
                                     kVersion, 0, 0, 0),
            h, limits),
            WireError::kBadType);
}

TEST(NetReject, EvalRequestPayloadValidation) {
  const ProtocolLimits limits;
  EvalRequest base;
  base.id = 1;
  base.grid = "g";
  base.points = {CoordVector{0.5, 0.5}};
  const auto frame = encode_eval_request(base);
  const auto payload = std::span(frame).subspan(kFrameHeaderBytes);
  EvalRequest out;

  // Well-formed baseline.
  ASSERT_EQ(decode_eval_request(payload, out, limits), WireError::kNone);

  // One byte short / one trailing byte: exact consumption is enforced.
  EXPECT_EQ(decode_eval_request(payload.first(payload.size() - 1), out,
                                limits),
            WireError::kBadPayload);
  std::vector<std::uint8_t> longer(payload.begin(), payload.end());
  longer.push_back(0);
  EXPECT_EQ(decode_eval_request(longer, out, limits), WireError::kBadPayload);

  // Structural bounds: dimension 0, dimension > kMaxDim, zero points. A
  // CoordVector cannot even hold these shapes (its own contract), so the
  // corrupt values are patched into the wire bytes directly. Field offsets
  // in the payload: id(8) deadline(8) name_len(4) name dim(4) count(4).
  const auto mutate = [&](std::uint32_t dim, std::uint32_t count) {
    auto f = frame;
    const std::size_t dim_at =
        kFrameHeaderBytes + 8 + 8 + 4 + base.grid.size();
    std::memcpy(f.data() + dim_at, &dim, sizeof(dim));
    std::memcpy(f.data() + dim_at + sizeof(dim), &count, sizeof(count));
    EvalRequest o;
    return decode_eval_request(std::span(f).subspan(kFrameHeaderBytes), o,
                               limits);
  };
  EXPECT_EQ(mutate(0, 1), WireError::kBadPayload);  // dimension 0
  EXPECT_EQ(mutate(kMaxDim + 1, 1), WireError::kBadPayload);
  EXPECT_EQ(mutate(2, 0), WireError::kBadPayload);  // zero points

  // The batch bound is its own error so the server can answer precisely.
  ProtocolLimits tight = limits;
  tight.max_batch_points = 1;
  EvalRequest two = base;
  two.points.assign(2, CoordVector{0.5, 0.5});
  const auto two_frame = encode_eval_request(two);
  EXPECT_EQ(decode_eval_request(
                std::span(two_frame).subspan(kFrameHeaderBytes), out, tight),
            WireError::kOversizedBatch);

  // A name longer than the receiver allows is structural.
  ProtocolLimits short_names = limits;
  short_names.max_name_bytes = 0;
  EXPECT_EQ(decode_eval_request(payload, out, short_names),
            WireError::kBadPayload);
}

TEST(NetReject, PropertyRandomBytesNeverCrashTheDecoders) {
  // Pure fuzz: every decoder must map arbitrary bytes to a WireError (or a
  // valid message), never crash or over-read. Sanitizer lanes give this
  // property its teeth.
  const PropertyResult r = run_property(
      {.name = "net_decoder_fuzz", .iterations = 64},
      [](std::mt19937_64& rng) -> std::string {
        std::uniform_int_distribution<std::size_t> len_dist(0, 256);
        std::vector<std::uint8_t> bytes(len_dist(rng));
        for (std::uint8_t& b : bytes)
          b = static_cast<std::uint8_t>(rng() & 0xFF);

        const ProtocolLimits limits;
        FrameHeader h;
        (void)decode_header(bytes, h, limits);
        EvalRequest req;
        (void)decode_eval_request(bytes, req, limits);
        EvalResponse resp;
        (void)decode_eval_response(bytes, resp, limits);
        ListResponse list;
        (void)decode_list_response(bytes, list, limits);
        WireStats stats;
        (void)decode_stats_response(bytes, stats);
        ErrorFrame err;
        (void)decode_error(bytes, err, limits);
        return "";
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

// --------------------------------------------------------------------------
// Loopback transport
// --------------------------------------------------------------------------

TEST(NetTransport, LoopbackPairMovesBytesAndSignalsEof) {
  auto [a, b] = loopback_pair();
  const char msg[] = "hello";
  ASSERT_TRUE(a->write_all(msg, sizeof(msg)));
  char buf[sizeof(msg)] = {};
  ASSERT_TRUE(read_exact(*b, buf, sizeof(msg)));
  EXPECT_STREQ(buf, "hello");

  a->shutdown();
  EXPECT_EQ(b->read_some(buf, sizeof(buf)), 0u);   // EOF
  EXPECT_FALSE(b->write_all(msg, sizeof(msg)));    // peer is gone
  a->shutdown();                                   // idempotent
}

TEST(NetTransport, LoopbackBoundedBufferAppliesBackpressure) {
  auto [writer, reader] = loopback_pair(/*capacity=*/8);
  std::atomic<bool> write_done{false};
  std::thread producer([&, w = writer.get()] {
    const std::uint8_t chunk[32] = {};
    ASSERT_TRUE(w->write_all(chunk, sizeof(chunk)));  // 4x the capacity
    write_done.store(true);
  });
  // The writer cannot finish until the reader drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(write_done.load());
  std::uint8_t sink[32];
  ASSERT_TRUE(read_exact(*reader, sink, sizeof(sink)));
  producer.join();
  EXPECT_TRUE(write_done.load());
}

// --------------------------------------------------------------------------
// End-to-end over loopback
// --------------------------------------------------------------------------

TEST(NetE2E, EvalResultsBitIdenticalToDirectEvaluate) {
  LoopbackStack stack;
  const auto e0 = stack.registry.find("g0");
  const auto e1 = stack.registry.find("g1");
  NetClient client = stack.client();

  const auto p0 = workloads::uniform_points(2, 64, 19);
  const auto p1 = workloads::uniform_points(3, 64, 20);
  const EvalResponse r0 = client.evaluate_batch("g0", p0);
  const EvalResponse r1 = client.evaluate_batch("g1", p1);
  ASSERT_EQ(r0.results.size(), p0.size());
  ASSERT_EQ(r1.results.size(), p1.size());
  for (std::size_t k = 0; k < p0.size(); ++k) {
    ASSERT_EQ(r0.results[k].status,
              static_cast<std::uint8_t>(serve::Status::kOk));
    EXPECT_EQ(r0.results[k].value, evaluate(e0->storage, p0[k])) << k;
  }
  for (std::size_t k = 0; k < p1.size(); ++k) {
    ASSERT_EQ(r1.results[k].status,
              static_cast<std::uint8_t>(serve::Status::kOk));
    EXPECT_EQ(r1.results[k].value, evaluate(e1->storage, p1[k])) << k;
  }

  const NetServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.eval_requests, 2u);
  EXPECT_EQ(stats.eval_points, 128u);
  EXPECT_EQ(stats.frames_decoded, 2u);
  EXPECT_EQ(stats.frames_rejected, 0u);
}

TEST(NetE2E, ListAndStatsTravelOverTheWire) {
  LoopbackStack stack;
  NetClient client = stack.client();
  (void)client.evaluate_batch("g0", workloads::uniform_points(2, 5, 3));

  const ListResponse list = client.list_grids();
  ASSERT_EQ(list.grids.size(), 2u);
  EXPECT_EQ(list.grids[0].name, "g0");  // registry names() sorts
  EXPECT_EQ(list.grids[0].dim, 2u);
  EXPECT_EQ(list.grids[0].level, 4u);
  const auto entry = stack.registry.find("g0");
  EXPECT_EQ(list.grids[0].points, entry->storage.size());
  EXPECT_EQ(list.grids[0].memory_bytes, entry->memory_bytes());
  EXPECT_EQ(list.grids[1].name, "g1");

  const WireStats stats = client.fetch_stats();
  EXPECT_EQ(stats.eval_requests, 1u);
  EXPECT_EQ(stats.eval_points, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  // The stats request itself was decoded before the snapshot was taken.
  EXPECT_GE(stats.frames_decoded, 2u);
}

TEST(NetE2E, SemanticFailuresTravelAsPerPointStatuses) {
  LoopbackStack stack;
  NetClient client = stack.client();

  // Unknown grid: transport-level success, per-point kNotFound.
  const EvalResponse unknown =
      client.evaluate_batch("nope", workloads::uniform_points(2, 3, 5));
  for (const PointResult& r : unknown.results)
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(serve::Status::kNotFound));

  // Out-of-cube coordinate: kInvalid, same connection still healthy.
  const EvalResponse invalid =
      client.evaluate_batch("g0", {CoordVector{0.5, 1.5}});
  ASSERT_EQ(invalid.results.size(), 1u);
  EXPECT_EQ(invalid.results[0].status,
            static_cast<std::uint8_t>(serve::Status::kInvalid));

  const EvalResponse ok = client.evaluate_batch("g0", {CoordVector{0.5, 0.5}});
  EXPECT_EQ(ok.results[0].status,
            static_cast<std::uint8_t>(serve::Status::kOk));
}

TEST(NetE2E, ExpiredDeadlineBudgetIsShedAtAdmission) {
  LoopbackStack stack;
  NetClient client = stack.client();

  const auto pts = workloads::uniform_points(2, 16, 7);
  // Negative budget: expired the moment the server decodes the frame — the
  // deterministic end-to-end route into admission shedding.
  const EvalResponse resp = client.evaluate_batch("g0", pts, -1);
  ASSERT_EQ(resp.results.size(), pts.size());
  for (const PointResult& r : resp.results)
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(serve::Status::kTimeout));

  const serve::ServiceStats sv = stack.service->stats();
  EXPECT_EQ(sv.shed_at_admission, pts.size());
  EXPECT_EQ(sv.timed_out, pts.size());
  EXPECT_EQ(sv.completed, 0u);
  EXPECT_EQ(sv.batches_formed, 0u);  // dead work never reached a batch

  // A healthy budget on the same connection evaluates normally.
  const EvalResponse ok = client.evaluate_batch("g0", pts, 30'000'000);
  for (const PointResult& r : ok.results)
    EXPECT_EQ(r.status, static_cast<std::uint8_t>(serve::Status::kOk));
}

TEST(NetE2E, OversizedBatchIsRejectedButTheConnectionSurvives) {
  NetServerOptions opts;
  opts.limits.max_batch_points = 4;
  LoopbackStack stack(opts);
  // The client must be allowed to *send* the oversized batch: loosen only
  // its own limits.
  ProtocolLimits loose;
  loose.max_batch_points = 1 << 16;
  NetClient client = stack.client(loose);

  try {
    (void)client.evaluate_batch("g0", workloads::uniform_points(2, 5, 11));
    FAIL() << "oversized batch was not rejected";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), WireError::kOversizedBatch);
  }

  // Framing stayed intact: the same connection keeps serving.
  const EvalResponse ok =
      client.evaluate_batch("g0", workloads::uniform_points(2, 4, 12));
  EXPECT_EQ(ok.results.size(), 4u);
  const NetServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.frames_rejected, 1u);
  EXPECT_EQ(stats.error_frames_sent, 1u);
  EXPECT_EQ(stats.eval_requests, 1u);
}

TEST(NetE2E, OversizedFrameClosesTheConnection) {
  LoopbackStack stack;
  auto raw = stack.listener.connect();
  ASSERT_NE(raw, nullptr);

  const auto head = valid_header(MsgType::kEvalRequest,
                                 NetServerOptions{}.limits.max_frame_bytes + 1);
  ASSERT_TRUE(raw->write_all(head.data(), head.size()));

  // Best-effort error frame, then end-of-stream: the length field cannot be
  // trusted, so the server will not resynchronize.
  const auto err = read_frame(*raw);
  ASSERT_TRUE(err.has_value());
  ASSERT_EQ(err->header.type, MsgType::kError);
  ErrorFrame decoded;
  ASSERT_EQ(decode_error(err->payload, decoded, ProtocolLimits{}),
            WireError::kNone);
  EXPECT_EQ(decoded.code,
            static_cast<std::uint32_t>(WireError::kOversizedFrame));
  EXPECT_FALSE(read_frame(*raw).has_value());
  EXPECT_TRUE(eventually(
      [&] { return stack.server->stats().frames_rejected == 1; }));
}

TEST(NetE2E, UnknownTypeByteIsRejectedWithoutClosing) {
  LoopbackStack stack;
  auto raw = stack.listener.connect();
  ASSERT_NE(raw, nullptr);

  // Unknown type 99 with a small, honest payload length: the framing is
  // intact, so the server discards the payload and answers.
  const std::vector<std::uint8_t> junk(10, 0xEE);
  const auto head = raw_header(kMagic, kEndianTag, sizeof(real_t), kVersion,
                               99, 0, junk.size());
  ASSERT_TRUE(raw->write_all(head.data(), head.size()));
  ASSERT_TRUE(raw->write_all(junk.data(), junk.size()));
  const auto err = read_frame(*raw);
  ASSERT_TRUE(err.has_value());
  ASSERT_EQ(err->header.type, MsgType::kError);
  ErrorFrame decoded;
  ASSERT_EQ(decode_error(err->payload, decoded, ProtocolLimits{}),
            WireError::kNone);
  EXPECT_EQ(decoded.code, static_cast<std::uint32_t>(WireError::kBadType));

  // Same for a well-formed frame of a type only servers send.
  const auto resp_frame = encode_eval_response({.id = 1, .results = {}});
  ASSERT_TRUE(raw->write_all(resp_frame.data(), resp_frame.size()));
  const auto err2 = read_frame(*raw);
  ASSERT_TRUE(err2.has_value());
  EXPECT_EQ(err2->header.type, MsgType::kError);

  // The connection is still serving real requests.
  const auto list_frame = encode_list_request();
  ASSERT_TRUE(raw->write_all(list_frame.data(), list_frame.size()));
  const auto list = read_frame(*raw);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->header.type, MsgType::kListResponse);
  EXPECT_EQ(stack.server->stats().frames_rejected, 2u);
}

TEST(NetE2E, ConnectionsBeyondTheCapAreTurnedAway) {
  NetServerOptions opts;
  opts.max_connections = 1;
  LoopbackStack stack(opts);

  NetClient first = stack.client();
  (void)first.list_grids();  // guarantees the first connection is accepted

  auto second = stack.listener.connect();
  ASSERT_NE(second, nullptr);
  const auto frame = read_frame(*second);  // unsolicited "go away"
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->header.type, MsgType::kError);
  EXPECT_FALSE(read_frame(*second).has_value());  // and the stream is closed
  const NetServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_rejected, 1u);
}

// --------------------------------------------------------------------------
// Corrupt-frame battery (randomized, CSG_PROPERTY_SEED replays)
// --------------------------------------------------------------------------

TEST(NetE2E, CorruptFrameBatteryNeverCrashesTheServer) {
  LoopbackStack stack;
  std::uint64_t expected_rejected = 0;

  const PropertyResult r = run_property(
      {.name = "net_corrupt_frames", .iterations = 24},
      [&](std::mt19937_64& rng) -> std::string {
        auto raw = stack.listener.connect();
        if (raw == nullptr) return "listener refused a connection";
        const std::uint64_t before = stack.server->stats().frames_rejected;
        enum Kind {
          kTruncatedHeader,
          kWrongMagic,
          kWrongEndianness,
          kWrongRealWidth,
          kOversizedLength,
          kGarbagePayload,
          kKindCount,
        };
        const auto kind = static_cast<Kind>(rng() % kKindCount);
        bool expect_error_frame = true;
        bool expect_close = true;
        WireError expect_code = WireError::kNone;

        switch (kind) {
          case kTruncatedHeader: {
            // 1..23 bytes of a valid frame, then end-of-stream.
            const auto frame = valid_header(MsgType::kListRequest, 0);
            const std::size_t n = 1 + rng() % (kFrameHeaderBytes - 1);
            if (!raw->write_all(frame.data(), n)) return "write failed";
            raw->shutdown();
            expect_error_frame = false;  // shutdown killed both directions
            break;
          }
          case kWrongMagic: {
            auto magic = kMagic;
            magic[rng() % magic.size()] ^= 0x20;
            const auto frame = raw_header(magic, kEndianTag, sizeof(real_t),
                                          kVersion, 1, 0, 0);
            if (!raw->write_all(frame.data(), frame.size()))
              return "write failed";
            expect_code = WireError::kBadMagic;
            break;
          }
          case kWrongEndianness: {
            const auto frame = raw_header(kMagic, 0x04030201u, sizeof(real_t),
                                          kVersion, 1, 0, 0);
            if (!raw->write_all(frame.data(), frame.size()))
              return "write failed";
            expect_code = WireError::kBadEndianness;
            break;
          }
          case kWrongRealWidth: {
            const auto frame =
                raw_header(kMagic, kEndianTag,
                           sizeof(real_t) == 8 ? 4u : 8u, kVersion, 1, 0, 0);
            if (!raw->write_all(frame.data(), frame.size()))
              return "write failed";
            expect_code = WireError::kBadRealWidth;
            break;
          }
          case kOversizedLength: {
            const auto frame = valid_header(
                MsgType::kEvalRequest,
                NetServerOptions{}.limits.max_frame_bytes + 1 + rng() % 1024);
            if (!raw->write_all(frame.data(), frame.size()))
              return "write failed";
            expect_code = WireError::kOversizedFrame;
            break;
          }
          case kGarbagePayload: {
            // Valid eval-request header, payload of 0xFF bytes: the name
            // length decodes as 0xFFFFFFFF > max_name_bytes, structurally
            // malformed, and the connection survives.
            const std::size_t n = 28 + rng() % 100;
            const auto head = valid_header(MsgType::kEvalRequest, n);
            const std::vector<std::uint8_t> garbage(n, 0xFF);
            if (!raw->write_all(head.data(), head.size()) ||
                !raw->write_all(garbage.data(), garbage.size()))
              return "write failed";
            expect_code = WireError::kBadPayload;
            expect_close = false;
            break;
          }
          default:
            return "unreachable";
        }
        ++expected_rejected;

        if (expect_error_frame) {
          const auto frame = read_frame(*raw);
          if (!frame.has_value()) return "expected an error frame, got EOF";
          if (frame->header.type != MsgType::kError)
            return "expected an error frame";
          ErrorFrame err;
          if (decode_error(frame->payload, err, ProtocolLimits{}) !=
              WireError::kNone)
            return "server sent a malformed error frame";
          if (err.code != static_cast<std::uint32_t>(expect_code))
            return std::string("wrong error code: got ") +
                   to_string(static_cast<WireError>(err.code)) + ", want " +
                   to_string(expect_code);
        }
        if (expect_close) {
          if (expect_error_frame && read_frame(*raw).has_value())
            return "connection should have closed";
        } else {
          // Recoverable: the same connection must answer a real request.
          const auto list_frame = encode_list_request();
          if (!raw->write_all(list_frame.data(), list_frame.size()))
            return "recoverable connection refused a follow-up write";
          const auto list = read_frame(*raw);
          if (!list.has_value() ||
              list->header.type != MsgType::kListResponse)
            return "recoverable connection did not answer a list request";
          raw->shutdown();
        }
        if (!eventually([&] {
              return stack.server->stats().frames_rejected == before + 1;
            }))
          return "frames_rejected did not advance by exactly one";
        return "";
      });
  EXPECT_TRUE(r.passed) << r.detail;
  // The battery's own ledger agrees with the server's counter.
  EXPECT_EQ(stack.server->stats().frames_rejected, expected_rejected);
  EXPECT_EQ(stack.server->stats().eval_requests, 0u);
}

// --------------------------------------------------------------------------
// Pipelined connections
// --------------------------------------------------------------------------

TEST(NetPipeline, ResponsesArriveInRequestOrderWhenEarlierBatchesAreSlower) {
  // The first request is a 64-point batch on g1, the next two are single
  // points on g0: if ordering depended on completion, the small batches
  // would overtake the big one. Submitting against a *paused* service
  // guarantees all three frames are admitted while zero responses have
  // been written, so the pipelining counters are exact.
  serve::ServiceOptions sopts;
  sopts.start_paused = true;
  LoopbackStack stack({}, sopts);
  const auto e0 = stack.registry.find("g0");
  const auto e1 = stack.registry.find("g1");
  NetClient client = stack.client();

  const auto big = workloads::uniform_points(3, 64, 43);
  const auto small = workloads::uniform_points(2, 1, 44);
  const std::uint64_t id_a = client.submit_eval("g1", big);
  const std::uint64_t id_b = client.submit_eval("g0", small);
  const std::uint64_t id_c = client.submit_eval("g0", small);
  EXPECT_EQ(client.outstanding(), 3u);

  // Blocking calls must refuse to interleave with pipelined traffic.
  EXPECT_THROW((void)client.list_grids(), std::runtime_error);

  ASSERT_TRUE(eventually(
      [&] { return stack.server->stats().eval_requests >= 3; }));
  stack.service->start();

  // collect() itself throws on any id or point-count mismatch; check the
  // ids explicitly anyway, plus bit-identical values.
  const EvalResponse ra = client.collect();
  EXPECT_EQ(ra.id, id_a);
  ASSERT_EQ(ra.results.size(), big.size());
  for (std::size_t k = 0; k < big.size(); ++k)
    EXPECT_EQ(ra.results[k].value, evaluate(e1->storage, big[k])) << k;
  const EvalResponse rb = client.collect();
  EXPECT_EQ(rb.id, id_b);
  ASSERT_EQ(rb.results.size(), 1u);
  EXPECT_EQ(rb.results[0].value, evaluate(e0->storage, small[0]));
  const EvalResponse rc = client.collect();
  EXPECT_EQ(rc.id, id_c);
  EXPECT_EQ(client.outstanding(), 0u);

  // Frames 2 and 3 were admitted while response 1 was still pending.
  const NetServerStats ns = stack.server->stats();
  EXPECT_EQ(ns.pipelined_frames, 2u);
  EXPECT_EQ(ns.frames_in_flight_peak, 3u);
}

TEST(NetPipeline, ReaderExitDrainsEveryQueuedResponseInOrder) {
  // Four pipelined evals followed by a corrupted header: the reader stops
  // at the corruption, but the writer must still flush all four queued
  // responses (in request order) plus the final error frame before the
  // connection closes — pipelining must not turn a reader exit into
  // dropped responses.
  serve::ServiceOptions sopts;
  sopts.start_paused = true;
  LoopbackStack stack({}, sopts);
  auto raw = stack.listener.connect();

  const auto pts = workloads::uniform_points(2, 3, 45);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EvalRequest req;
    req.id = id;
    req.grid = "g0";
    req.points = pts;
    const auto frame = encode_eval_request(req);
    ASSERT_TRUE(raw->write_all(frame.data(), frame.size()));
  }
  ASSERT_TRUE(eventually(
      [&] { return stack.server->stats().eval_requests >= 4; }));
  auto bad = valid_header(MsgType::kEvalRequest, 0);
  bad[0] ^= 0x20;  // corrupt the magic: a header-level close
  ASSERT_TRUE(raw->write_all(bad.data(), bad.size()));

  // Nothing can flush until the service runs.
  stack.service->start();
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto frame = read_frame(*raw);
    ASSERT_TRUE(frame.has_value()) << "response " << id << " was dropped";
    ASSERT_EQ(frame->header.type, MsgType::kEvalResponse);
    EvalResponse resp;
    ASSERT_EQ(decode_eval_response(frame->payload, resp, {}),
              WireError::kNone);
    EXPECT_EQ(resp.id, id);
    ASSERT_EQ(resp.results.size(), pts.size());
  }
  const auto err_frame = read_frame(*raw);
  ASSERT_TRUE(err_frame.has_value());
  ASSERT_EQ(err_frame->header.type, MsgType::kError);
  ErrorFrame err;
  ASSERT_EQ(decode_error(err_frame->payload, err, {}), WireError::kNone);
  EXPECT_EQ(static_cast<WireError>(err.code), WireError::kBadMagic);
  EXPECT_FALSE(read_frame(*raw).has_value());  // then the connection closes
}

// --------------------------------------------------------------------------
// Multi-client soak + drain shutdown
// --------------------------------------------------------------------------

TEST(NetSoak, MultiClientMixedTrafficThenDrainShutdown) {
  NetServerOptions opts;
  opts.limits.max_batch_points = 32;
  serve::ServiceOptions service_opts;
  service_opts.workers = 2;
  service_opts.queue_capacity = 4096;
  service_opts.max_batch_points = 16;
  LoopbackStack stack(opts, service_opts);
  const auto e0 = stack.registry.find("g0");
  const auto e1 = stack.registry.find("g1");

  constexpr int kClients = 4;
  constexpr int kRounds = 30;  // per client; round % 3 picks the traffic mix
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      ProtocolLimits loose;
      loose.max_batch_points = 1 << 16;
      NetClient client(stack.listener.connect(), loose);
      const auto& entry = (c % 2 == 0) ? e0 : e1;
      const auto grid = (c % 2 == 0) ? "g0" : "g1";
      const dim_t d = entry->storage.dim();
      for (int round = 0; round < kRounds; ++round) {
        const auto pts = workloads::uniform_points(
            d, 4, static_cast<std::uint32_t>(1000 * c + round));
        try {
          switch (round % 3) {
            case 0: {  // valid traffic: bit-identical to direct evaluate()
              const EvalResponse resp = client.evaluate_batch(grid, pts);
              for (std::size_t k = 0; k < pts.size(); ++k)
                if (resp.results[k].status !=
                        static_cast<std::uint8_t>(serve::Status::kOk) ||
                    resp.results[k].value != evaluate(entry->storage, pts[k]))
                  failures.fetch_add(1);
              break;
            }
            case 1: {  // expired budget: every point times out
              const EvalResponse resp =
                  client.evaluate_batch(grid, pts, -1);
              for (const PointResult& r : resp.results)
                if (r.status !=
                    static_cast<std::uint8_t>(serve::Status::kTimeout))
                  failures.fetch_add(1);
              break;
            }
            case 2: {  // oversized batch: rejected, connection survives
              const auto big = workloads::uniform_points(
                  d, 33, static_cast<std::uint32_t>(c + round));
              try {
                (void)client.evaluate_batch(grid, big);
                failures.fetch_add(1);
              } catch (const RemoteError& e) {
                if (e.code() != WireError::kOversizedBatch)
                  failures.fetch_add(1);
              }
              break;
            }
            default:
              break;
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Deterministic post-soak ledger: kClients * kRounds requests, one third
  // each valid / expired / oversized, 4 points per non-oversized request.
  const NetServerStats ns = stack.server->stats();
  const auto total = static_cast<std::uint64_t>(kClients) * kRounds;
  EXPECT_EQ(ns.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(ns.eval_requests, total * 2 / 3);
  EXPECT_EQ(ns.eval_points, total * 2 / 3 * 4);
  EXPECT_EQ(ns.frames_rejected, total / 3);
  EXPECT_EQ(ns.error_frames_sent, total / 3);
  const serve::ServiceStats sv = stack.service->stats();
  EXPECT_EQ(sv.shed_at_admission, total / 3 * 4);
  EXPECT_EQ(sv.timed_out, total / 3 * 4);
  EXPECT_EQ(sv.completed, total / 3 * 4);

  // Drain shutdown under live traffic: one more client hammers the server
  // while stop() lands. Every response that arrives must still be complete
  // and bit-identical; the client must end with a clean transport error,
  // never a crash or a torn result.
  std::atomic<std::uint64_t> drained_ok{0};
  std::thread drainer([&] {
    try {
      NetClient client(stack.listener.connect());
      const auto pts = workloads::uniform_points(2, 1, 424242);
      for (;;) {
        const EvalResponse resp = client.evaluate_batch("g0", pts);
        if (resp.results[0].status !=
                static_cast<std::uint8_t>(serve::Status::kOk) ||
            resp.results[0].value != evaluate(e0->storage, pts[0])) {
          failures.fetch_add(1);
          return;
        }
        drained_ok.fetch_add(1);
      }
    } catch (const std::exception&) {
      // Expected: the server went away mid-loop.
    }
  });
  while (drained_ok.load() < 5) std::this_thread::yield();
  stack.server->stop();
  drainer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(drained_ok.load(), 5u);
}

// --------------------------------------------------------------------------
// Real TCP
// --------------------------------------------------------------------------

TEST(NetTcp, EvalOverRealSocketsMatchesDirectEvaluate) {
  serve::GridRegistry registry;
  registry.add("g0", make_grid(2, 4));
  const auto entry = registry.find("g0");
  serve::EvalService service(registry, {});
  TcpListener listener(0);  // ephemeral port
  ASSERT_GT(listener.port(), 0);
  NetServer server(listener, registry, service, {});
  server.start();

  {
    NetClient client = NetClient::connect_tcp("127.0.0.1", listener.port());
    const auto pts = workloads::uniform_points(2, 32, 77);
    const EvalResponse resp = client.evaluate_batch("g0", pts);
    ASSERT_EQ(resp.results.size(), pts.size());
    for (std::size_t k = 0; k < pts.size(); ++k) {
      ASSERT_EQ(resp.results[k].status,
                static_cast<std::uint8_t>(serve::Status::kOk));
      EXPECT_EQ(resp.results[k].value, evaluate(entry->storage, pts[k])) << k;
    }
    EXPECT_EQ(client.list_grids().grids.size(), 1u);
  }
  server.stop();
  service.stop();
}

TEST(NetTcp, BindConflictThrows) {
  TcpListener first(0);
  ASSERT_GT(first.port(), 0);
  EXPECT_THROW(TcpListener second(first.port()), std::runtime_error);
}

}  // namespace
}  // namespace csg::net
