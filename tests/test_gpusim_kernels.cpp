#include "csg/gpusim/kernels.hpp"

#include <gtest/gtest.h>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/gpusim/device.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg::gpusim {
namespace {

struct Case {
  dim_t d;
  level_t n;
};

class KernelSweep : public ::testing::TestWithParam<Case> {};

TEST_P(KernelSweep, HierarchizationIsBitIdenticalToCpu) {
  const auto [d, n] = GetParam();
  const auto f = workloads::simulation_field(d);
  CompactStorage cpu(d, n), gpu(d, n);
  cpu.sample(f.f);
  gpu.sample(f.f);
  hierarchize(cpu);
  Launcher ln(tesla_c1060());
  const GpuRunReport rep = gpu_hierarchize(ln, gpu);
  for (flat_index_t j = 0; j < cpu.size(); ++j)
    ASSERT_EQ(cpu[j], gpu[j]) << "flat index " << j;
  EXPECT_GT(rep.launches, 0u);
  EXPECT_GT(rep.modeled_ms, 0.0);
}

TEST_P(KernelSweep, EvaluationIsBitIdenticalToCpu) {
  const auto [d, n] = GetParam();
  CompactStorage s(d, n);
  s.sample(workloads::gaussian_bump(d).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(d, 128, 5);
  const auto cpu = evaluate_many(s, pts);
  Launcher ln(tesla_c1060());
  GpuRunReport rep;
  const auto gpu = gpu_evaluate(ln, s, pts, &rep);
  ASSERT_EQ(gpu.size(), cpu.size());
  for (std::size_t p = 0; p < cpu.size(); ++p)
    ASSERT_EQ(gpu[p], cpu[p]) << "point " << p;
  EXPECT_EQ(rep.launches, 1u);
}

TEST_P(KernelSweep, AllConfigurationsProduceTheSameCoefficients) {
  const auto [d, n] = GetParam();
  const auto f = workloads::oscillatory(d);
  CompactStorage ref(d, n);
  ref.sample(f.f);
  hierarchize(ref);
  Launcher ln(tesla_c1060());
  for (BinmatMode bm : {BinmatMode::kConstantCache, BinmatMode::kSharedMemory,
                        BinmatMode::kOnTheFly, BinmatMode::kGlobalCached}) {
    for (LevelVectorMode lm :
         {LevelVectorMode::kBlockShared, LevelVectorMode::kPerThread}) {
      CompactStorage s(d, n);
      s.sample(f.f);
      GpuConfig cfg;
      cfg.binmat = bm;
      cfg.level_vector = lm;
      gpu_hierarchize(ln, s, cfg);
      for (flat_index_t j = 0; j < ref.size(); ++j)
        ASSERT_EQ(s[j], ref[j])
            << "binmat=" << static_cast<int>(bm)
            << " lmode=" << static_cast<int>(lm) << " idx=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelSweep,
    ::testing::Values(Case{1, 5}, Case{2, 5}, Case{3, 4}, Case{5, 4},
                      Case{7, 3}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST_P(KernelSweep, DehierarchizationIsBitIdenticalToCpu) {
  const auto [d, n] = GetParam();
  const auto f = workloads::gaussian_bump(d);
  CompactStorage cpu(d, n), gpu(d, n);
  cpu.sample(f.f);
  gpu.sample(f.f);
  hierarchize(cpu);
  hierarchize(gpu);
  dehierarchize(cpu);
  Launcher ln(tesla_c1060());
  gpu_dehierarchize(ln, gpu);
  for (flat_index_t j = 0; j < cpu.size(); ++j)
    ASSERT_EQ(cpu[j], gpu[j]) << "flat index " << j;
}

TEST_P(KernelSweep, DeviceRoundTripRestoresNodalValues) {
  const auto [d, n] = GetParam();
  const auto f = workloads::simulation_field(d);
  CompactStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  Launcher ln(tesla_c1060());
  gpu_hierarchize(ln, s);
  gpu_dehierarchize(ln, s);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST(GpuKernels, FermiCachesAbsorbTransactions) {
  // The paper's Sec. 8 expectation: Fermi's two-level cache "could be
  // beneficial for both sparse grid operations". The hierarchization's
  // scattered parent reads hit heavily in L2 (coarse groups are reused by
  // all their children), so DRAM transactions drop versus Tesla.
  const dim_t d = 5;
  const level_t n = 6;
  const auto f = workloads::parabola_product(d);
  auto run = [&](const DeviceSpec& spec) {
    Launcher ln(spec);
    CompactStorage s(d, n);
    s.sample(f.f);
    return gpu_hierarchize(ln, s).counters;
  };
  const PerfCounters tesla = run(tesla_c1060());
  const PerfCounters fermi = run(fermi_c2050());
  EXPECT_EQ(tesla.l1_hit_transactions + tesla.l2_hit_transactions, 0u);
  EXPECT_GT(fermi.l1_hit_transactions + fermi.l2_hit_transactions, 0u);
  EXPECT_LT(fermi.global_transactions, tesla.global_transactions);
  // Same coalesced traffic before the caches (same kernel, same accesses).
  EXPECT_EQ(fermi.global_transactions + fermi.l1_hit_transactions +
                fermi.l2_hit_transactions,
            tesla.global_transactions);
  EXPECT_GT(fermi.cache_hit_rate(), 0.2);
}

TEST(GpuKernels, GlobalBinmatIsCheapOnFermiRuinousOnTesla) {
  const dim_t d = 8;
  const level_t n = 5;
  auto run = [&](const DeviceSpec& spec, BinmatMode bm) {
    Launcher ln(spec);
    CompactStorage s(d, n);
    s.sample(workloads::parabola_product(d).f);
    GpuConfig cfg;
    cfg.binmat = bm;
    return gpu_hierarchize(ln, s, cfg).modeled_ms;
  };
  // Tesla: global binmat pays a DRAM transaction per lookup.
  EXPECT_GT(run(tesla_c1060(), BinmatMode::kGlobalCached),
            2 * run(tesla_c1060(), BinmatMode::kConstantCache));
  // Fermi: the L1 absorbs the lookups — within 1.5x of constant cache.
  EXPECT_LT(run(fermi_c2050(), BinmatMode::kGlobalCached),
            1.5 * run(fermi_c2050(), BinmatMode::kConstantCache));
}

TEST(GpuKernels, LauncherResetFlushesDeviceCaches) {
  const dim_t d = 3;
  const level_t n = 5;
  Launcher ln(fermi_c2050());
  auto run_once = [&] {
    CompactStorage s(d, n);
    s.sample(workloads::parabola_product(d).f);
    return gpu_hierarchize(ln, s).counters.global_transactions;
  };
  // gpu_hierarchize resets the launcher (and caches) up front, so repeated
  // runs see identical cold-cache behaviour.
  EXPECT_EQ(run_once(), run_once());
}

TEST(GpuKernels, OnTheFlyBinomialIsSlowerThanConstantCache) {
  // The Sec. 5.3 ablation: recomputing binomials makes hierarchization
  // substantially slower (paper: ~4x at its scale).
  const dim_t d = 6;
  const level_t n = 6;
  Launcher ln(tesla_c1060());
  auto run = [&](BinmatMode bm) {
    CompactStorage s(d, n);
    s.sample(workloads::parabola_product(d).f);
    GpuConfig cfg;
    cfg.binmat = bm;
    return gpu_hierarchize(ln, s, cfg).modeled_ms;
  };
  EXPECT_GT(run(BinmatMode::kOnTheFly), 1.5 * run(BinmatMode::kConstantCache));
}

TEST(GpuKernels, BlockSharedLevelVectorImprovesOccupancy) {
  // The second Sec. 5.3 ablation: sharing l across the block frees shared
  // memory and raises occupancy, hence modeled time drops.
  const dim_t d = 8;
  const level_t n = 5;
  Launcher ln(tesla_c1060());
  auto run = [&](LevelVectorMode lm) {
    CompactStorage s(d, n);
    s.sample(workloads::parabola_product(d).f);
    GpuConfig cfg;
    cfg.level_vector = lm;
    const GpuRunReport r = gpu_hierarchize(ln, s, cfg);
    return std::make_pair(r.modeled_ms, r.mean_occupancy);
  };
  const auto [shared_ms, shared_occ] = run(LevelVectorMode::kBlockShared);
  const auto [private_ms, private_occ] = run(LevelVectorMode::kPerThread);
  EXPECT_GT(shared_occ, private_occ);
  EXPECT_LT(shared_ms, private_ms);
}

TEST(GpuKernels, SharedMemoryPressureGrowsWithDimension) {
  // Sec. 6.2: per-thread shared memory grows linearly with d, squeezing
  // occupancy — the reason the paper expects speedups to drop beyond d=10.
  GpuConfig cfg;
  const std::uint64_t small = evaluate_shared_bytes(2, 6, cfg);
  const std::uint64_t large = evaluate_shared_bytes(10, 6, cfg);
  EXPECT_GT(large, 4 * small);
  const DeviceSpec dev = tesla_c1060();
  EXPECT_GT(dev.occupancy(cfg.block_size, small),
            dev.occupancy(cfg.block_size, large));
}

TEST(GpuKernels, EvaluationCoalescesBetterThanHierarchization) {
  // The paper's qualitative contrast: evaluation's accesses pack well
  // (coords staged cooperatively, coefficients read by nearby threads),
  // hierarchization's parent reads cannot be packed.
  const dim_t d = 4;
  const level_t n = 5;
  CompactStorage s(d, n);
  s.sample(workloads::simulation_field(d).f);
  Launcher ln(tesla_c1060());
  CompactStorage h = s;
  const GpuRunReport hr = gpu_hierarchize(ln, h);
  const auto pts = workloads::uniform_points(d, 2048, 3);
  GpuRunReport er;
  gpu_evaluate(ln, h, pts, &er);
  EXPECT_GT(er.counters.accesses_per_transaction(),
            hr.counters.accesses_per_transaction());
}

TEST(GpuKernels, FermiDeviceRunsTheSameKernels) {
  const dim_t d = 3;
  CompactStorage a(d, 4), b(d, 4);
  a.sample(workloads::gaussian_bump(d).f);
  b.sample(workloads::gaussian_bump(d).f);
  Launcher tesla(tesla_c1060());
  Launcher fermi(fermi_c2050());
  gpu_hierarchize(tesla, a);
  gpu_hierarchize(fermi, b);
  EXPECT_EQ(a.values(), b.values());
}

TEST(GpuKernels, EvaluateHandlesNonMultipleBlockSizes) {
  CompactStorage s(2, 4);
  s.sample(workloads::parabola_product(2).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(2, 130, 9);  // 130 = 2*64 + 2
  Launcher ln(tesla_c1060());
  const auto gpu = gpu_evaluate(ln, s, pts);
  const auto cpu = evaluate_many(s, pts);
  for (std::size_t p = 0; p < cpu.size(); ++p) ASSERT_EQ(gpu[p], cpu[p]);
}

}  // namespace
}  // namespace csg::gpusim
