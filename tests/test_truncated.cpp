#include "csg/core/truncated.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

CompactStorage compressed(const workloads::TestFunction& f, dim_t d,
                          level_t n) {
  CompactStorage s(d, n);
  s.sample(f.f);
  hierarchize(s);
  return s;
}

TEST(Truncated, ZeroThresholdIsLossless) {
  const CompactStorage s = compressed(workloads::simulation_field(3), 3, 5);
  const TruncatedStorage t(s, 0);
  EXPECT_EQ(t.error_bound(), 0.0);
  for (const CoordVector& x : workloads::uniform_points(3, 100, 5))
    EXPECT_EQ(t.evaluate(x), evaluate(s, x));
}

TEST(Truncated, IndicesAreStrictlyIncreasing) {
  const CompactStorage s = compressed(workloads::gaussian_bump(3), 3, 5);
  const TruncatedStorage t(s, 1e-4);
  for (std::size_t k = 1; k < t.indices().size(); ++k)
    ASSERT_LT(t.indices()[k - 1], t.indices()[k]);
}

TEST(Truncated, ErrorStaysWithinTheBound) {
  const dim_t d = 3;
  const CompactStorage s = compressed(workloads::simulation_field(d), d, 6);
  for (const real_t eps : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const TruncatedStorage t(s, eps);
    real_t max_err = 0;
    for (const CoordVector& x : workloads::halton_points(d, 500))
      max_err = std::max(max_err, std::abs(t.evaluate(x) - evaluate(s, x)));
    EXPECT_LE(max_err, t.error_bound() + 1e-14) << "eps=" << eps;
  }
}

TEST(Truncated, CompressionGrowsWithThresholdAndSmoothness) {
  const dim_t d = 3;
  const level_t n = 6;
  const CompactStorage smooth = compressed(workloads::parabola_product(d), d, n);
  const TruncatedStorage loose(smooth, 5e-3);
  const TruncatedStorage tight(smooth, 1e-6);
  EXPECT_LT(loose.kept_count(), tight.kept_count());
  // Smooth data: this truncation keeps only the coarse groups (the tensor
  // parabola's surpluses are exactly 4^{-|l|}).
  EXPECT_LT(loose.kept_count(), smooth.values().size() / 4);
  EXPECT_LT(loose.payload_ratio(), 0.5);  // net savings over dense storage
  EXPECT_EQ(loose.kept_count() + loose.dropped_count(),
            static_cast<std::size_t>(smooth.size()));
}

TEST(Truncated, DensifyRoundTripsSurvivors) {
  const CompactStorage s = compressed(workloads::oscillatory(2), 2, 6);
  const TruncatedStorage t(s, 1e-4);
  const CompactStorage dense = t.densify();
  ASSERT_EQ(dense.size(), s.size());
  std::size_t kept_seen = 0;
  for (flat_index_t j = 0; j < s.size(); ++j) {
    if (std::abs(s[j]) > 1e-4) {
      EXPECT_EQ(dense[j], s[j]);
      ++kept_seen;
    } else {
      EXPECT_EQ(dense[j], 0.0);
    }
  }
  EXPECT_EQ(kept_seen, t.kept_count());
}

TEST(Truncated, DensifiedEvaluationMatchesTruncatedEvaluation) {
  const CompactStorage s = compressed(workloads::gaussian_bump(4), 4, 4);
  const TruncatedStorage t(s, 5e-4);
  const CompactStorage dense = t.densify();
  for (const CoordVector& x : workloads::uniform_points(4, 100, 21))
    EXPECT_NEAR(t.evaluate(x), evaluate(dense, x), 1e-15);
}

TEST(Truncated, SmoothFieldsCompressHarderThanRoughOnes) {
  // At eps = 1e-3 the smooth tensor parabola's kept set SATURATES (deep
  // groups all fall below threshold: surpluses are 4^{-|l|}), while the
  // kinked ridge keeps gaining coefficients with every level (the kink
  // plane crosses ~4x more cells per level and its surpluses only decay
  // like 2^{-|l|}).
  const dim_t d = 3;
  const real_t eps = 1e-3;
  auto kept = [&](level_t n, bool rough) {
    CompactStorage src(d, n);
    if (rough) {
      src.sample([](const CoordVector& x) {
        return std::abs(x[0] + x[1] + x[2] - 1.47) * 4 * x[0] * (1 - x[0]);
      });
    } else {
      src.sample(workloads::parabola_product(d).f);
    }
    hierarchize(src);
    return TruncatedStorage(src, eps).kept_count();
  };
  EXPECT_LT(kept(8, false), kept(8, true));
  // Saturation for the smooth field: refining the grid adds nothing above
  // threshold.
  EXPECT_LE(kept(8, false), kept(6, false) + 8);
  // Growth for the kinked field.
  EXPECT_GT(kept(8, true), 2 * kept(6, true));
}

TEST(TruncatedDeath, NegativeThresholdRejected) {
  const CompactStorage s = compressed(workloads::parabola_product(2), 2, 3);
  EXPECT_DEATH(TruncatedStorage(s, -1.0), "precondition");
}

}  // namespace
}  // namespace csg
