#include "csg/core/boundary_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg {
namespace {

TEST(BoundaryGrid, SubgridCountsMatchSection44) {
  // "The number of d-j-dimensional sparse grids in the boundary is
  // 2^j * C(d, d-j)": Fig. 7's 3d example has 6 2d faces, 12 1d edges and
  // 8 corners.
  EXPECT_EQ(num_boundary_subgrids(3, 0), 1u);   // the interior itself
  EXPECT_EQ(num_boundary_subgrids(3, 1), 6u);   // 2d projections
  EXPECT_EQ(num_boundary_subgrids(3, 2), 12u);  // 1d projections
  EXPECT_EQ(num_boundary_subgrids(3, 3), 8u);   // corners
  EXPECT_EQ(num_boundary_subgrids(5, 2), 40u);  // 4 * C(5,2)
}

TEST(BoundaryGrid, TotalPointsSumOverSubgrids) {
  const dim_t d = 3;
  const level_t n = 4;
  BoundarySparseGrid bg(d, n);
  flat_index_t expected = 0;
  for (dim_t j = 0; j <= d; ++j)
    expected += num_boundary_subgrids(d, j) * bg.subgrid_points(j);
  EXPECT_EQ(bg.num_points(), expected);
  // 1d interior grids of level 4 hold 15 points; corners hold one.
  EXPECT_EQ(bg.subgrid_points(d), 1u);
  EXPECT_EQ(bg.subgrid_points(d - 1), 15u);
}

struct Case {
  dim_t d;
  level_t n;
};

class BoundarySweep : public ::testing::TestWithParam<Case> {};

TEST_P(BoundarySweep, Bp2IdxIsABijection) {
  const auto [d, n] = GetParam();
  BoundarySparseGrid bg(d, n);
  std::set<flat_index_t> seen;
  for (flat_index_t idx = 0; idx < bg.num_points(); ++idx) {
    const BoundaryPoint p = bg.idx2bp(idx);
    EXPECT_TRUE(bg.contains(p));
    EXPECT_EQ(bg.bp2idx(p), idx);
    EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), bg.num_points());
}

TEST_P(BoundarySweep, CoordinatesAreConsistentWithFixedDims) {
  const auto [d, n] = GetParam();
  BoundarySparseGrid bg(d, n);
  for (flat_index_t idx = 0; idx < bg.num_points(); ++idx) {
    const BoundaryPoint p = bg.idx2bp(idx);
    const CoordVector x = p.coordinates();
    for (dim_t t = 0; t < d; ++t) {
      if (p.fixed(t)) {
        EXPECT_TRUE(x[t] == 0.0 || x[t] == 1.0);
      } else {
        EXPECT_GT(x[t], 0.0);
        EXPECT_LT(x[t], 1.0);
      }
    }
  }
}

TEST_P(BoundarySweep, HierarchizeRoundTrip) {
  const auto [d, n] = GetParam();
  const auto f = workloads::boundary_polynomial(d);
  BoundaryStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  hierarchize(s);
  dehierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST_P(BoundarySweep, EvaluationInterpolatesAtEveryPoint) {
  const auto [d, n] = GetParam();
  const auto f = workloads::boundary_polynomial(d);
  BoundaryStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  hierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j) {
    const BoundaryPoint p = s.grid().idx2bp(j);
    EXPECT_NEAR(evaluate(s, p.coordinates()),
                nodal[static_cast<std::size_t>(j)], 1e-11)
        << "point " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundarySweep,
    ::testing::Values(Case{1, 4}, Case{2, 4}, Case{3, 3}, Case{4, 3}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(BoundaryGrid, CornersHoldFunctionValues) {
  const dim_t d = 3;
  const auto f = workloads::boundary_polynomial(d);
  BoundaryStorage s(d, 3);
  s.sample(f.f);
  hierarchize(s);
  // Corner coefficients stay nodal (they have no parents in any dimension).
  for (flat_index_t idx = s.grid().group_offset(d); idx < s.size(); ++idx) {
    const BoundaryPoint p = s.grid().idx2bp(idx);
    EXPECT_DOUBLE_EQ(s[idx], f(p.coordinates()));
  }
}

TEST(BoundaryGrid, ExactForMultilinearFunctions) {
  // A d-multilinear function (affine per dimension) is reproduced exactly
  // by the boundary grid's d-linear interpolant everywhere.
  const dim_t d = 3;
  auto f = [](const CoordVector& x) {
    return (1 + x[0]) * (2 - x[1]) * (0.5 + x[2]);
  };
  BoundaryStorage s(d, 3);
  s.sample(f);
  hierarchize(s);
  for (const CoordVector& x : workloads::halton_points(d, 200))
    EXPECT_NEAR(evaluate(s, x), f(x), 1e-12);
}

TEST(BoundaryGrid, MatchesInteriorGridForZeroBoundaryFunctions) {
  // When f vanishes on the boundary, the boundary extension must agree
  // with the plain interior sparse grid interpolant.
  const dim_t d = 2;
  const level_t n = 5;
  const auto f = workloads::parabola_product(d);
  BoundaryStorage bs(d, n);
  bs.sample(f.f);
  hierarchize(bs);
  CompactStorage cs(d, n);
  cs.sample(f.f);
  hierarchize(cs);
  for (const CoordVector& x : workloads::uniform_points(d, 200, 23))
    EXPECT_NEAR(evaluate(bs, x), evaluate(cs, x), 1e-13);
}

TEST(BoundaryGrid, InteriorPointsOfInteriorSubgridShareIndexing) {
  // The j=0 block of the boundary layout is exactly the interior compact
  // layout.
  const dim_t d = 3;
  const level_t n = 4;
  BoundarySparseGrid bg(d, n);
  const RegularSparseGrid& ig = bg.interior_grid(d);
  ASSERT_EQ(bg.group_offset(0), 0u);
  ASSERT_EQ(bg.subgrid_points(0), ig.num_points());
  for (flat_index_t k = 0; k < ig.num_points(); ++k) {
    const GridPoint gp = ig.idx2gp(k);
    const BoundaryPoint p = bg.idx2bp(k);
    EXPECT_EQ(p.level, gp.level);
    EXPECT_EQ(p.index, gp.index);
  }
}

TEST(BoundaryGrid, SubsetRankOrdersColexicographically) {
  BoundarySparseGrid bg(4, 2);
  auto make = [&](std::initializer_list<dim_t> fixed) {
    BoundaryPoint p;
    p.level.resize(4);
    p.index.resize(4);
    for (dim_t t = 0; t < 4; ++t) {
      p.level[t] = 0;
      p.index[t] = 1;
    }
    for (dim_t t : fixed) {
      p.level[t] = kBoundaryLevel;
      p.index[t] = 0;
    }
    return p;
  };
  // Colex order of 2-subsets of {0..3}: {0,1} {0,2} {1,2} {0,3} {1,3} {2,3}.
  EXPECT_EQ(bg.subset_rank(make({0, 1})), 0u);
  EXPECT_EQ(bg.subset_rank(make({0, 2})), 1u);
  EXPECT_EQ(bg.subset_rank(make({1, 2})), 2u);
  EXPECT_EQ(bg.subset_rank(make({0, 3})), 3u);
  EXPECT_EQ(bg.subset_rank(make({1, 3})), 4u);
  EXPECT_EQ(bg.subset_rank(make({2, 3})), 5u);
}

TEST(BoundaryGrid, ContainsRejectsInvalidPoints) {
  BoundarySparseGrid bg(2, 3);
  BoundaryPoint ok;
  ok.level = {kBoundaryLevel, 1};
  ok.index = {0, 3};
  EXPECT_TRUE(bg.contains(ok));
  BoundaryPoint bad_index = ok;
  bad_index.index[0] = 2;  // boundary index must be 0 or 1
  EXPECT_FALSE(bg.contains(bad_index));
  BoundaryPoint too_deep;
  too_deep.level = {2, 1};  // |l| = 3 >= n
  too_deep.index = {1, 1};
  EXPECT_FALSE(bg.contains(too_deep));
}

}  // namespace
}  // namespace csg
