// Randomized cross-validation: every representation in the library —
// compact, truncated, adaptive, combination, restriction, serialization —
// must describe the SAME function when built from the same data. Shapes,
// coefficients, and probe points all come from csg::testing's generators,
// and the storage-vs-baseline comparisons run through its differential
// oracles, so each seed fully determines a test case and a failing seed
// replays via CSG_PROPERTY_SEED (see docs/TESTING.md).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/combination/combination_grid.hpp"
#include "csg/core.hpp"
#include "csg/io/serialize.hpp"
#include "csg/testing/bijection.hpp"
#include "csg/testing/generators.hpp"
#include "csg/testing/oracles.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

using testing::GridShape;
using testing::ShapeConstraints;

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng{GetParam()};

  GridShape random_shape(dim_t min_d, dim_t max_d, level_t min_n,
                         level_t max_n,
                         flat_index_t max_points = 200'000) {
    ShapeConstraints c;
    c.min_dim = min_d;
    c.max_dim = max_d;
    c.min_level = min_n;
    c.max_level = max_n;
    c.max_points = max_points;
    return testing::random_shape(rng, c);
  }
};

TEST_P(CrossValidation, TransformOraclesOnRandomData) {
  // The full differential battery: hierarchize parity across the
  // iterative/literal/poles/OpenMP family and the map/hash/prefix-tree
  // baselines, round trips through every (de)hierarchize pairing, evaluate
  // parity across the batched/blocked/OpenMP paths, and the serialize
  // round trip — all on one random shape + coefficient field per seed.
  const GridShape shape = random_shape(1, 5, 2, 6, 20'000);
  const CompactStorage nodal = testing::random_coefficients(rng, shape);
  const testing::OracleResult r = testing::check_all(nodal, rng);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.comparisons, 0u);
}

TEST_P(CrossValidation, AllRepresentationsAgreeOnRandomCoefficients) {
  const GridShape shape = random_shape(2, 4, 3, 4);
  // Hierarchical coefficients drawn at random; fs is their interpolant.
  CompactStorage compact = testing::random_coefficients(rng, shape);
  const dim_t d = shape.d;
  const level_t n = shape.n;

  // Truncated with eps = 0 is lossless.
  const TruncatedStorage truncated(compact, 0);

  // Nodal values of fs feed the adaptive grid (regular init).
  adaptive::AdaptiveSparseGrid adaptive_grid(d, n);
  adaptive_grid.sample([&](const CoordVector& x) {
    // The adaptive grid's points coincide with the regular grid's; read
    // the nodal value through evaluation of the hierarchical data.
    return evaluate(compact, x);
  });
  adaptive_grid.hierarchize();

  // The combination technique samples fs at its component grid points;
  // interpolation commutes, so the combination equals fs.
  combination::CombinationGrid combi(d, n);
  combi.sample([&](const CoordVector& x) { return evaluate(compact, x); });

  // Serialization round trip.
  std::stringstream blob;
  io::save(compact, blob);
  const CompactStorage reloaded = io::load(blob);

  for (const CoordVector& x : testing::random_points(rng, d, 60)) {
    const real_t reference = evaluate(compact, x);
    ASSERT_EQ(truncated.evaluate(x), reference);
    ASSERT_EQ(evaluate(reloaded, x), reference);
    ASSERT_NEAR(adaptive_grid.evaluate(x), reference, 1e-11);
    ASSERT_NEAR(combi.evaluate(x), reference, 1e-11);
  }
}

TEST_P(CrossValidation, CombinationOracleOnRandomData) {
  // check_combination_parity: the combination identity at random probes
  // plus the to_compact round trip back to the reference coefficients.
  const GridShape shape = random_shape(2, 4, 3, 4);
  const CompactStorage nodal = testing::random_coefficients(rng, shape);
  const auto pts = testing::random_points(rng, shape.d, 48);
  const testing::OracleResult r =
      testing::check_combination_parity(nodal, pts);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.comparisons, 0u);
}

TEST_P(CrossValidation, AdaptiveOracleOnRandomData) {
  // check_adaptive_parity: per-point surplus agreement between the
  // hash-keyed unstructured hierarchization and the compact passes, plus
  // interpolant agreement at random probes.
  const GridShape shape = random_shape(2, 4, 3, 4);
  const CompactStorage nodal = testing::random_coefficients(rng, shape);
  const auto pts = testing::random_points(rng, shape.d, 48);
  const testing::OracleResult r = testing::check_adaptive_parity(nodal, pts);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.comparisons, 0u);
}

TEST_P(CrossValidation, RestrictionAgreesAtRandomPlanes) {
  const GridShape shape = random_shape(3, 5, 3, 4);
  const dim_t d = shape.d;
  const CompactStorage full = testing::random_coefficients(rng, shape);

  // Random kept subset of size 1..d-1.
  const auto k = static_cast<dim_t>(
      std::uniform_int_distribution<unsigned>(1, d - 1)(rng));
  const DimVector<dim_t> kept = testing::random_kept_dims(rng, d, k);

  std::uniform_real_distribution<real_t> coord(0, 1);
  CoordVector anchor(d - k);
  for (real_t& a : anchor) a = coord(rng);

  const CompactStorage slice = restrict_to_plane(full, kept, anchor);
  for (const CoordVector& x : testing::random_points(rng, k, 40))
    ASSERT_NEAR(evaluate(slice, x),
                evaluate(full, embed_in_plane(d, kept, anchor, x)), 1e-11);
}

TEST_P(CrossValidation, Gp2IdxFuzzAcrossRandomShapes) {
  // Levels chosen so num_points stays small even at kMaxDim; the exhaustive
  // sweep lives in `csgtool selfcheck` and the Bijection tests.
  ShapeConstraints c;
  c.max_dim = kMaxDim;
  c.max_level = 10;
  c.max_points = 2'000'000;
  const GridShape shape = testing::random_shape(rng, c);
  const RegularSparseGrid g(shape.d, shape.n);
  const testing::BijectionReport report =
      testing::verify_bijection_sampled(g, rng, 500);
  ASSERT_TRUE(report.ok) << report.detail;
}

TEST_P(CrossValidation, GradientConsistentWithValueOnRandomData) {
  const GridShape shape = random_shape(1, 4, 2, 5);
  const CompactStorage s = testing::random_coefficients(rng, shape);
  std::uniform_real_distribution<real_t> coord(0.01, 0.99);
  for (int trial = 0; trial < 30; ++trial) {
    CoordVector x(shape.d);
    for (real_t& v : x) v = coord(rng);
    const ValueAndGradient vg = evaluate_with_gradient(s, x);
    ASSERT_NEAR(vg.value, evaluate(s, x), 1e-11);
  }
}

TEST_P(CrossValidation, IntegralMatchesDenseQuadratureOnRandomData) {
  const GridShape shape = random_shape(1, 3, 2, 4);
  const dim_t d = shape.d;
  const level_t n = shape.n;
  const CompactStorage s = testing::random_coefficients(rng, shape);
  // Midpoint-rule quadrature fine enough to resolve every cell exactly in
  // expectation terms: use 4x the finest resolution per dimension.
  const int cells = 1 << (n + 2);
  double acc = 0;
  DimVector<int> c(d, 0);
  for (;;) {
    CoordVector x(d);
    for (dim_t t = 0; t < d; ++t)
      x[t] = (static_cast<real_t>(c[t]) + real_t{0.5}) / cells;
    acc += evaluate(s, x);
    dim_t t = d;
    bool done = true;
    while (t-- > 0) {
      if (++c[t] < cells) {
        done = false;
        break;
      }
      c[t] = 0;
    }
    if (done) break;
  }
  acc /= std::pow(static_cast<double>(cells), d);
  ASSERT_NEAR(integrate(s), acc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace csg
