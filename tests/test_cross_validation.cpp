// Randomized cross-validation: every representation in the library —
// compact, truncated, adaptive, combination, restriction, serialization —
// must describe the SAME function when built from the same data. Seeds
// drive randomized shapes and coefficients so each run covers fresh
// territory deterministically.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/combination/combination_grid.hpp"
#include "csg/core.hpp"
#include "csg/io/serialize.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng{GetParam()};

  dim_t random_dim(dim_t lo, dim_t hi) {
    return static_cast<dim_t>(
        std::uniform_int_distribution<unsigned>(lo, hi)(rng));
  }
  level_t random_level(level_t lo, level_t hi) {
    return static_cast<level_t>(
        std::uniform_int_distribution<unsigned>(lo, hi)(rng));
  }

  /// Random coefficients, not sampled from any smooth function: the
  /// algebra must hold for arbitrary data.
  CompactStorage random_grid_function(dim_t d, level_t n) {
    CompactStorage s(d, n);
    std::uniform_real_distribution<real_t> dist(-2, 2);
    for (flat_index_t j = 0; j < s.size(); ++j) s[j] = dist(rng);
    return s;
  }
};

TEST_P(CrossValidation, HierarchizeDehierarchizeRoundTripOnRandomData) {
  const dim_t d = random_dim(1, 5);
  const level_t n = random_level(2, 6 - d / 2);
  CompactStorage s = random_grid_function(d, n);
  const std::vector<real_t> original = s.values();
  hierarchize(s);
  dehierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j)
    ASSERT_NEAR(s[j], original[static_cast<std::size_t>(j)], 1e-10);
}

TEST_P(CrossValidation, AllRepresentationsAgreeOnRandomCoefficients) {
  const dim_t d = random_dim(2, 4);
  const level_t n = random_level(3, 4);
  // Hierarchical coefficients drawn at random; fs is their interpolant.
  CompactStorage compact = random_grid_function(d, n);

  // Truncated with eps = 0 is lossless.
  const TruncatedStorage truncated(compact, 0);

  // Nodal values of fs feed the adaptive grid (regular init).
  CompactStorage nodal = compact;
  dehierarchize(nodal);
  adaptive::AdaptiveSparseGrid adaptive_grid(d, n);
  {
    std::size_t cursor = 0;
    (void)cursor;
    adaptive_grid.sample([&](const CoordVector& x) {
      // The adaptive grid's points coincide with the regular grid's; read
      // the nodal value through evaluation of the dehierarchized data.
      return evaluate(compact, x);
    });
  }
  adaptive_grid.hierarchize();

  // The combination technique samples fs at its component grid points;
  // interpolation commutes, so the combination equals fs.
  combination::CombinationGrid combi(d, n);
  combi.sample([&](const CoordVector& x) { return evaluate(compact, x); });

  // Serialization round trip.
  std::stringstream blob;
  io::save(compact, blob);
  const CompactStorage reloaded = io::load(blob);

  for (const CoordVector& x :
       workloads::uniform_points(d, 60, GetParam() ^ 0xabcd)) {
    const real_t reference = evaluate(compact, x);
    ASSERT_EQ(truncated.evaluate(x), reference);
    ASSERT_EQ(evaluate(reloaded, x), reference);
    ASSERT_NEAR(adaptive_grid.evaluate(x), reference, 1e-11);
    ASSERT_NEAR(combi.evaluate(x), reference, 1e-11);
  }
}

TEST_P(CrossValidation, RestrictionAgreesAtRandomPlanes) {
  const dim_t d = random_dim(3, 5);
  const level_t n = random_level(3, 4);
  const CompactStorage full = random_grid_function(d, n);

  // Random kept subset of size 1..d-1.
  const dim_t k = random_dim(1, d - 1);
  std::vector<dim_t> all(d);
  for (dim_t t = 0; t < d; ++t) all[t] = t;
  std::shuffle(all.begin(), all.end(), rng);
  DimVector<dim_t> kept(all.begin(), all.begin() + k);
  std::sort(kept.begin(), kept.end());

  std::uniform_real_distribution<real_t> coord(0, 1);
  CoordVector anchor(d - k);
  for (real_t& a : anchor) a = coord(rng);

  const CompactStorage slice = restrict_to_plane(full, kept, anchor);
  for (int trial = 0; trial < 40; ++trial) {
    CoordVector x(k);
    for (real_t& v : x) v = coord(rng);
    ASSERT_NEAR(evaluate(slice, x),
                evaluate(full, embed_in_plane(d, kept, anchor, x)), 1e-11);
  }
}

TEST_P(CrossValidation, Gp2IdxFuzzAcrossRandomShapes) {
  const dim_t d = random_dim(1, kMaxDim);
  const level_t max_n = d <= 4 ? 10 : (d <= 8 ? 6 : 4);
  const level_t n = random_level(1, max_n);
  RegularSparseGrid g(d, n);
  std::uniform_int_distribution<flat_index_t> dist(0, g.num_points() - 1);
  for (int trial = 0; trial < 500; ++trial) {
    const flat_index_t idx = dist(rng);
    const GridPoint gp = g.idx2gp(idx);
    ASSERT_TRUE(g.contains(gp));
    ASSERT_EQ(g.gp2idx(gp), idx);
  }
}

TEST_P(CrossValidation, GradientConsistentWithValueOnRandomData) {
  const dim_t d = random_dim(1, 4);
  const level_t n = random_level(2, 5);
  const CompactStorage s = random_grid_function(d, n);
  std::uniform_real_distribution<real_t> coord(0.01, 0.99);
  for (int trial = 0; trial < 30; ++trial) {
    CoordVector x(d);
    for (real_t& v : x) v = coord(rng);
    const ValueAndGradient vg = evaluate_with_gradient(s, x);
    ASSERT_NEAR(vg.value, evaluate(s, x), 1e-11);
  }
}

TEST_P(CrossValidation, IntegralMatchesDenseQuadratureOnRandomData) {
  const dim_t d = random_dim(1, 3);
  const level_t n = random_level(2, 4);
  const CompactStorage s = random_grid_function(d, n);
  // Midpoint-rule quadrature fine enough to resolve every cell exactly in
  // expectation terms: use 4x the finest resolution per dimension.
  const int cells = 1 << (n + 2);
  double acc = 0;
  DimVector<int> c(d, 0);
  for (;;) {
    CoordVector x(d);
    for (dim_t t = 0; t < d; ++t)
      x[t] = (static_cast<real_t>(c[t]) + real_t{0.5}) / cells;
    acc += evaluate(s, x);
    dim_t t = d;
    bool done = true;
    while (t-- > 0) {
      if (++c[t] < cells) {
        done = false;
        break;
      }
      c[t] = 0;
    }
    if (done) break;
  }
  acc /= std::pow(static_cast<double>(cells), d);
  ASSERT_NEAR(integrate(s), acc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace csg
