#include "csg/regression/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/testing/property.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::regression {
namespace {

TEST(Regression, DesignOperatorMatchesEvaluate) {
  CompactStorage s(3, 4);
  s.sample(workloads::gaussian_bump(3).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(3, 40, 3);
  const auto via_design = apply_design(s, pts);
  for (std::size_t m = 0; m < pts.size(); ++m)
    EXPECT_EQ(via_design[m], evaluate(s, pts[m]));
}

TEST(Regression, TransposedOperatorIsAdjoint) {
  // <B a, r> == <a, B^T r> for random a and r — the defining property.
  const auto res = csg::testing::run_property(
      {"design_transpose_adjoint", 6}, [](std::mt19937_64& rng) -> std::string {
        const dim_t d = 3;
        const level_t n = 4;
        RegularSparseGrid grid(d, n);
        std::uniform_real_distribution<real_t> dist(-1, 1);
        CompactStorage a(d, n);
        for (flat_index_t j = 0; j < a.size(); ++j) a[j] = dist(rng);
        const auto pts = workloads::uniform_points(d, 60, 8);
        std::vector<real_t> r(pts.size());
        for (real_t& v : r) v = dist(rng);

        const auto ba = apply_design(a, pts);
        double lhs = 0;
        for (std::size_t m = 0; m < pts.size(); ++m) lhs += ba[m] * r[m];

        CompactStorage btr(d, n);
        apply_design_transposed(grid, pts, r, btr);
        double rhs = 0;
        for (flat_index_t j = 0; j < a.size(); ++j) rhs += a[j] * btr[j];

        const double tol = 1e-10 * (std::abs(lhs) + 1);
        if (std::abs(lhs - rhs) > tol)
          return "<Ba,r>=" + std::to_string(lhs) + " but <a,B^T r>=" +
                 std::to_string(rhs) + " (tol " + std::to_string(tol) + ")";
        return "";
      });
  EXPECT_TRUE(res.passed) << res.detail;
}

TEST(Regression, InterpolatesWhenDataComesFromTheGridItself) {
  // If y = fs(x) for a sparse grid function fs of the same shape and the
  // samples are plentiful, the fit recovers fs (up to the regularization).
  const dim_t d = 2;
  const level_t n = 4;
  CompactStorage truth(d, n);
  truth.sample(workloads::gaussian_bump(d).f);
  hierarchize(truth);

  const auto pts = workloads::halton_points(d, 800);
  const auto vals = apply_design(truth, pts);
  FitOptions opt;
  opt.lambda = 1e-10;
  opt.max_iterations = 500;
  FitReport report;
  const CompactStorage fitted = fit(d, n, pts, vals, opt, &report);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.training_mse, 1e-12);
  for (const CoordVector& x : workloads::uniform_points(d, 100, 77))
    EXPECT_NEAR(evaluate(fitted, x), evaluate(truth, x), 1e-4);
}

TEST(Regression, FitsNoisyDataBelowNoiseFloor) {
  // Each fit is expensive (1500 samples, level 5), so keep the iteration
  // count low; the property still resamples the noise every run.
  const auto res = csg::testing::run_property(
      {"noisy_fit_below_noise_floor", 2},
      [](std::mt19937_64& rng) -> std::string {
        const dim_t d = 2;
        const auto f = workloads::parabola_product(d);
        std::normal_distribution<real_t> noise(0, 0.02);
        const auto pts = workloads::halton_points(d, 1500);
        std::vector<real_t> vals(pts.size());
        for (std::size_t m = 0; m < pts.size(); ++m)
          vals[m] = f(pts[m]) + noise(rng);

        FitOptions opt;
        opt.lambda = 1e-5;
        FitReport report;
        const CompactStorage fitted = fit(d, 5, pts, vals, opt, &report);
        // Training error ~ noise variance (4e-4), not much lower (no gross
        // overfit) and not much higher (the model fits the signal).
        if (report.training_mse >= 3 * 0.02 * 0.02)
          return "training_mse " + std::to_string(report.training_mse) +
                 " above 3x noise variance";
        // True-function error well below the noise level: the fit denoises.
        const auto test_pts = workloads::uniform_points(d, 400, 31);
        double err = 0;
        for (const CoordVector& x : test_pts)
          err = std::max(err, std::abs(evaluate(fitted, x) - f(x)));
        if (err >= 0.05)
          return "max true-function error " + std::to_string(err) +
                 " not below 0.05";
        return "";
      });
  EXPECT_TRUE(res.passed) << res.detail;
}

TEST(Regression, StrongerRegularizationShrinksCoefficients) {
  const dim_t d = 2;
  const auto f = workloads::oscillatory(d);
  const auto pts = workloads::halton_points(d, 600);
  std::vector<real_t> vals(pts.size());
  for (std::size_t m = 0; m < pts.size(); ++m) vals[m] = f(pts[m]);

  auto norm_for = [&](double lambda) {
    FitOptions opt;
    opt.lambda = lambda;
    const CompactStorage fitted = fit(d, 5, pts, vals, opt);
    double norm = 0;
    for (flat_index_t j = 0; j < fitted.size(); ++j)
      norm += fitted[j] * fitted[j];
    return norm;
  };
  EXPECT_GT(norm_for(1e-8), norm_for(1e-2));
  EXPECT_GT(norm_for(1e-2), norm_for(10.0));
}

TEST(Regression, HandlesMoreCoefficientsThanSamples) {
  // Under-determined case: the regularized normal equations stay SPD and
  // CG converges; the surrogate reproduces the few samples well.
  const dim_t d = 3;
  const level_t n = 4;  // 177 coefficients
  const auto pts = workloads::halton_points(d, 40);
  const auto f = workloads::gaussian_bump(d);
  std::vector<real_t> vals(pts.size());
  for (std::size_t m = 0; m < pts.size(); ++m) vals[m] = f(pts[m]);
  FitOptions opt;
  opt.lambda = 1e-6;
  FitReport report;
  const CompactStorage fitted = fit(d, n, pts, vals, opt, &report);
  EXPECT_LT(report.training_mse, 1e-6);
}

TEST(Regression, ZeroTargetsGiveZeroCoefficients) {
  const auto pts = workloads::uniform_points(2, 50, 2);
  const std::vector<real_t> vals(pts.size(), 0.0);
  FitReport report;
  const CompactStorage fitted = fit(2, 4, pts, vals, {}, &report);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 0);
  for (flat_index_t j = 0; j < fitted.size(); ++j) EXPECT_EQ(fitted[j], 0.0);
}

TEST(Regression, MeanSquaredErrorDefinition) {
  CompactStorage s(1, 2);  // zero function
  const std::vector<CoordVector> pts = {CoordVector{0.25}, CoordVector{0.75}};
  const std::vector<real_t> vals = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(mean_squared_error(s, pts, vals), (1.0 + 4.0) / 2);
}

TEST(RegressionDeath, MismatchedSampleArraysRejected) {
  const auto pts = workloads::uniform_points(2, 10, 1);
  const std::vector<real_t> vals(9, 0.0);
  EXPECT_DEATH((void)fit(2, 3, pts, vals), "precondition");
}

}  // namespace
}  // namespace csg::regression
