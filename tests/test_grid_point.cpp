#include "csg/core/grid_point.hpp"

#include <gtest/gtest.h>

namespace csg {
namespace {

TEST(GridPoint, Coordinate1d) {
  EXPECT_DOUBLE_EQ(coordinate_1d(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(coordinate_1d(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(coordinate_1d(1, 3), 0.75);
  EXPECT_DOUBLE_EQ(coordinate_1d(2, 5), 0.625);
}

TEST(GridPoint, CoordinatesMultiDim) {
  const GridPoint gp{{1, 0, 2}, {1, 1, 7}};
  const CoordVector x = coordinates(gp);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 0.875);
}

TEST(GridPoint, RootHasBoundaryParents) {
  EXPECT_TRUE(left_parent_1d(0, 1).is_boundary);
  EXPECT_TRUE(right_parent_1d(0, 1).is_boundary);
}

TEST(GridPoint, Level1Parents) {
  // (1,1) at x=0.25: left endpoint x=0 (boundary), right endpoint x=0.5 =
  // the root (0,1).
  const Parent1d lp = left_parent_1d(1, 1);
  const Parent1d rp = right_parent_1d(1, 1);
  EXPECT_TRUE(lp.is_boundary);
  ASSERT_FALSE(rp.is_boundary);
  EXPECT_EQ(rp.level, 0u);
  EXPECT_EQ(rp.index, 1u);

  // (1,3) at x=0.75 mirrors it.
  const Parent1d lp3 = left_parent_1d(1, 3);
  const Parent1d rp3 = right_parent_1d(1, 3);
  ASSERT_FALSE(lp3.is_boundary);
  EXPECT_EQ(lp3.level, 0u);
  EXPECT_EQ(lp3.index, 1u);
  EXPECT_TRUE(rp3.is_boundary);
}

TEST(GridPoint, ParentCoordinatesAreSupportEndpoints) {
  // Property: for every interior point, the non-boundary parents sit at
  // x -+ h with h = 2^{-(l+1)}.
  for (level_t l = 0; l <= 8; ++l) {
    for (index1d_t i = 1; i < (index1d_t{1} << (l + 1)); i += 2) {
      const real_t x = coordinate_1d(l, i);
      const real_t h = coordinate_1d(l, 1);
      const Parent1d lp = left_parent_1d(l, i);
      const Parent1d rp = right_parent_1d(l, i);
      if (lp.is_boundary) {
        EXPECT_DOUBLE_EQ(x - h, 0.0);
      } else {
        EXPECT_LT(lp.level, l);
        EXPECT_DOUBLE_EQ(coordinate_1d(lp.level, lp.index), x - h);
      }
      if (rp.is_boundary) {
        EXPECT_DOUBLE_EQ(x + h, 1.0);
      } else {
        EXPECT_LT(rp.level, l);
        EXPECT_DOUBLE_EQ(coordinate_1d(rp.level, rp.index), x + h);
      }
    }
  }
}

TEST(GridPoint, ChildrenInvertParents) {
  // Property: a child's parent on the matching side is the original point.
  for (level_t l = 0; l <= 7; ++l) {
    for (index1d_t i = 1; i < (index1d_t{1} << (l + 1)); i += 2) {
      const index1d_t lc = left_child_index_1d(i);
      const index1d_t rc = right_child_index_1d(i);
      const Parent1d from_left = right_parent_1d(l + 1, lc);
      const Parent1d from_right = left_parent_1d(l + 1, rc);
      ASSERT_FALSE(from_left.is_boundary);
      EXPECT_EQ(from_left.level, l);
      EXPECT_EQ(from_left.index, i);
      ASSERT_FALSE(from_right.is_boundary);
      EXPECT_EQ(from_right.level, l);
      EXPECT_EQ(from_right.index, i);
    }
  }
}

TEST(GridPoint, HatBasisPeakAndSupport) {
  for (level_t l = 0; l <= 6; ++l) {
    for (index1d_t i = 1; i < (index1d_t{1} << (l + 1)); i += 2) {
      const real_t x = coordinate_1d(l, i);
      const real_t h = coordinate_1d(l, 1);
      EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x), 1.0);
      EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x - h), 0.0);
      EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x + h), 0.0);
      EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x - h / 2), 0.5);
      EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x + h / 2), 0.5);
      // Outside the support the hat is exactly zero.
      if (x + 2 * h <= 1) {
        EXPECT_DOUBLE_EQ(hat_basis_1d(l, i, x + 2 * h), 0.0);
      }
    }
  }
}

TEST(GridPoint, SupportIndexLocatesContainingBasis) {
  for (level_t l = 0; l <= 8; ++l) {
    for (real_t x : {0.0, 0.1, 0.31, 0.5, 0.77, 0.999}) {
      const index1d_t i = support_index_1d(l, x);
      EXPECT_TRUE(valid_point_1d(l, i));
      const real_t center = coordinate_1d(l, i);
      const real_t h = coordinate_1d(l, 1);
      EXPECT_GE(x, center - h);
      EXPECT_LE(x, center + h);
    }
  }
}

TEST(GridPoint, SupportIndexAtDomainEndIsLastCell) {
  EXPECT_EQ(support_index_1d(3, 1.0), (index1d_t{1} << 4) - 1);
  // and the hat there evaluates to zero: zero-boundary convention.
  EXPECT_DOUBLE_EQ(hat_basis_1d(3, support_index_1d(3, 1.0), 1.0), 0.0);
}

TEST(GridPoint, ValidPoint1d) {
  EXPECT_TRUE(valid_point_1d(0, 1));
  EXPECT_FALSE(valid_point_1d(0, 2));  // even
  EXPECT_FALSE(valid_point_1d(0, 3));  // out of range for level 0
  EXPECT_TRUE(valid_point_1d(2, 7));
  EXPECT_FALSE(valid_point_1d(2, 8));
  EXPECT_FALSE(valid_point_1d(2, 9));
}

TEST(GridPoint, ValidPointMultiDim) {
  EXPECT_TRUE(valid_point({{1, 2}, {3, 5}}));
  EXPECT_FALSE(valid_point({{1, 2}, {3, 4}}));   // even index
  EXPECT_FALSE(valid_point({{1}, {3, 5}}));      // size mismatch
  EXPECT_FALSE(valid_point({{}, {}}));           // empty
}

}  // namespace
}  // namespace csg
