#include "csg/memsim/cache.hpp"

#include <gtest/gtest.h>

namespace csg::memsim {
namespace {

TEST(Cache, FirstTouchMissesThenHits) {
  Cache c({1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.accesses(), 4u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, SequentialStreamMissesOncePerLine) {
  Cache c({32 * 1024, 64, 8});
  const int doubles = 1000;
  for (int k = 0; k < doubles; ++k) c.access(static_cast<std::uint64_t>(k) * 8);
  // 1000 doubles span ceil(8000/64) = 125 lines.
  EXPECT_EQ(c.misses(), 125u);
}

TEST(Cache, LruEvictsLeastRecentlyUsedWay) {
  // 2-way, 2 sets of 64B lines: lines 0, 2, 4 map to set 0.
  Cache c({256, 64, 2});
  c.access(0 * 64);    // miss, install line 0
  c.access(2 * 64);    // miss, install line 2
  c.access(0 * 64);    // hit, line 0 becomes MRU
  c.access(4 * 64);    // miss, evicts line 2 (LRU)
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_FALSE(c.access(2 * 64));  // was evicted
}

TEST(Cache, CapacityEvictionOnLargeWorkingSet) {
  Cache c({1024, 64, 2});  // holds 16 lines
  // Touch 64 distinct lines twice: second pass misses again (thrashing).
  for (int pass = 0; pass < 2; ++pass)
    for (int line = 0; line < 64; ++line)
      c.access(static_cast<std::uint64_t>(line) * 64);
  EXPECT_EQ(c.misses(), 128u);
}

TEST(Cache, SmallWorkingSetStaysResident) {
  Cache c({1024, 64, 2});
  for (int pass = 0; pass < 10; ++pass)
    for (int line = 0; line < 8; ++line)
      c.access(static_cast<std::uint64_t>(line) * 64);
  EXPECT_EQ(c.misses(), 8u);  // only compulsory misses
}

TEST(Cache, FlushDropsContents) {
  Cache c({1024, 64, 2});
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, ResetCountersKeepsContents) {
  Cache c({1024, 64, 2});
  c.access(0);
  c.reset_counters();
  EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.accesses(), 1u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheHierarchy, L2OnlySeesL1Misses) {
  CacheHierarchy h({1024, 64, 2}, {8192, 64, 4});
  for (int k = 0; k < 100; ++k) h.touch(static_cast<std::uint64_t>(k) * 64, 8);
  EXPECT_EQ(h.l1().accesses(), 100u);
  EXPECT_EQ(h.l1().misses(), 100u);
  EXPECT_EQ(h.l2().accesses(), 100u);
  // Second pass: working set (100 lines) exceeds L1 (16 lines) but fits L2
  // (128 lines): all L1 misses, all L2 hits.
  h.reset_counters();
  for (int k = 0; k < 100; ++k) h.touch(static_cast<std::uint64_t>(k) * 64, 8);
  EXPECT_EQ(h.l1().misses(), 100u);
  EXPECT_EQ(h.memory_accesses(), 0u);
}

TEST(CacheHierarchy, StraddlingObjectTouchesBothLines) {
  CacheHierarchy h({1024, 64, 2}, {8192, 64, 4});
  h.touch(60, 8);  // crosses the line boundary at 64
  EXPECT_EQ(h.l1().accesses(), 2u);
}

TEST(CacheHierarchy, PresetsConstruct) {
  CacheHierarchy n = CacheHierarchy::nehalem_core();
  CacheHierarchy b = CacheHierarchy::barcelona_core();
  n.touch(0);
  b.touch(0);
  EXPECT_EQ(n.l1().misses(), 1u);
  EXPECT_EQ(b.l1().misses(), 1u);
}

TEST(Cache, NonPowerOfTwoSetCountsWork) {
  // 768 KB with 128 B lines, 12 ways -> 512 sets; 96 KB 64 B 3-way -> 512.
  Cache fermi_l2({768 * 1024, 128, 12});
  EXPECT_FALSE(fermi_l2.access(0));
  EXPECT_TRUE(fermi_l2.access(64));
  Cache odd({96 * 1024, 64, 3});
  EXPECT_FALSE(odd.access(12345));
  EXPECT_TRUE(odd.access(12345));
}

TEST(CacheDeath, BadLineSizeRejected) {
  EXPECT_DEATH(Cache({1024, 48, 2}), "precondition");
}

}  // namespace
}  // namespace csg::memsim
