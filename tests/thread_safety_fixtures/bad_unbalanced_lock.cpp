// csg-lint fixture: NOT part of the build. Acquires a mutex by hand and
// returns on one path without releasing it; must fail under
// -Wthread-safety -Werror (capability still held at end of function).
#include "csg/core/thread_annotations.hpp"

namespace {

class Gate {
 public:
  // BAD: the early return leaks the lock.
  bool enter(bool fast_path) {
    mutex_.lock();
    if (fast_path) return true;
    ++entries_;
    mutex_.unlock();
    return false;
  }

 private:
  csg::Mutex mutex_;
  int entries_ CSG_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Gate g;
  return g.enter(false) ? 1 : 0;
}
