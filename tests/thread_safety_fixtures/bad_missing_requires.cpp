// csg-lint fixture: NOT part of the build. Calls a CSG_REQUIRES(mutex_)
// method without holding the mutex; must fail under -Wthread-safety
// -Werror. This is the exact bug class EvalService::collect_locked and
// NetServer::reap_locked used to guard with a "Must hold mutex_" comment.
#include <deque>

#include "csg/core/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void push(int v) {
    csg::MutexLock lock(mutex_);
    items_.push_back(v);
    trim_locked();
  }

  // BAD: locked helper called with no lock held.
  void trim() { trim_locked(); }

 private:
  void trim_locked() CSG_REQUIRES(mutex_) {
    while (items_.size() > 8) items_.pop_front();
  }

  csg::Mutex mutex_;
  std::deque<int> items_ CSG_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Queue q;
  q.push(1);
  q.trim();
  return 0;
}
