// csg-lint fixture: NOT part of the build. Control for the negative-compile
// matrix: exercises every primitive the serving stack uses — scoped guards,
// relockable UniqueMutexLock + CondVar wait loops, shared/exclusive
// reader-writer guards, CSG_REQUIRES helpers — and must compile clean under
// -Wthread-safety -Wthread-safety-beta -Werror.
#include <cstddef>
#include <deque>

#include "csg/core/thread_annotations.hpp"

namespace {

class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t cap) : capacity_(cap) {}

  void push(int v) {
    csg::UniqueMutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(lock);
    if (closed_) return;
    items_.push_back(v);
    trim_locked();
    lock.unlock();
    not_empty_.notify_one();
  }

  bool pop(int& out) {
    csg::UniqueMutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.wait(lock);
    if (items_.empty()) return false;
    out = items_.front();
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      csg::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void trim_locked() CSG_REQUIRES(mutex_) {
    while (items_.size() > capacity_) items_.pop_front();
  }

  const std::size_t capacity_;
  csg::Mutex mutex_;
  csg::CondVar not_empty_;
  csg::CondVar not_full_;
  std::deque<int> items_ CSG_GUARDED_BY(mutex_);
  bool closed_ CSG_GUARDED_BY(mutex_) = false;
};

class Registry {
 public:
  void set(std::size_t v) {
    csg::ExclusiveLock lock(mutex_);
    value_ = v;
  }

  std::size_t get() const {
    csg::SharedLock lock(mutex_);
    return value_;
  }

 private:
  mutable csg::SharedMutex mutex_;
  std::size_t value_ CSG_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  BoundedQueue q(4);
  q.push(1);
  int v = 0;
  q.pop(v);
  q.close();
  Registry r;
  r.set(7);
  return static_cast<int>(r.get()) - 7 + v - 1;
}
