#!/usr/bin/env sh
# Negative-compile matrix for the CSG_THREAD_SAFETY lane.
#
# Every bad_*.cpp fixture must FAIL to compile under Clang's thread-safety
# analysis with -Werror, and ok_annotated.cpp must compile clean — this is
# the mutation test proving the lane actually bites (annotations present,
# flags wired, wrapper contracts intact). Without a Clang toolchain the
# real check cannot run: the fixtures are then syntax-checked with the host
# compiler (proving the CSG_* macros are no-ops off-Clang, i.e. even the
# deliberately-broken lock usage is legal C++) and the test exits 77, which
# ctest reports as SKIPPED via SKIP_RETURN_CODE.
#
# Usage: check_thread_safety_fixtures.sh <repo-root> [<host-cxx>]
set -u

root=${1:?usage: check_thread_safety_fixtures.sh <repo-root> [<host-cxx>]}
host_cxx=${2:-c++}
here="$root/tests/thread_safety_fixtures"
inc="-I$root/src/core/include"
flags="-std=c++20 -fsyntax-only"
tsa="-Wthread-safety -Wthread-safety-beta -Werror"

clang=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16; do
  if command -v "$c" >/dev/null 2>&1; then
    clang=$c
    break
  fi
done

fail=0

if [ -z "$clang" ]; then
  echo "thread-safety fixtures: no clang++ on PATH; host-compiler pass only"
  for f in "$here"/bad_*.cpp "$here"/ok_annotated.cpp; do
    if ! "$host_cxx" $flags $inc "$f"; then
      echo "FAIL  $(basename "$f"): does not even parse with $host_cxx"
      fail=1
    fi
  done
  [ "$fail" -eq 0 ] || exit 1
  echo "ok    macros are no-ops under $host_cxx; skipping the clang matrix"
  exit 77
fi

for f in "$here"/bad_*.cpp; do
  name=$(basename "$f")
  if "$clang" $flags $tsa $inc "$f" 2>/dev/null; then
    echo "FAIL  $name: compiled clean but must be rejected by $clang $tsa"
    fail=1
  else
    echo "ok    $name: rejected as expected"
  fi
done

if out=$("$clang" $flags $tsa $inc "$here/ok_annotated.cpp" 2>&1); then
  echo "ok    ok_annotated.cpp: compiles clean"
else
  echo "FAIL  ok_annotated.cpp: must compile clean under $clang $tsa"
  echo "$out"
  fail=1
fi

exit "$fail"
