// csg-lint fixture: NOT part of the build. Reads a CSG_GUARDED_BY member
// without holding its mutex; must fail under -Wthread-safety -Werror.
#include <cstddef>

#include "csg/core/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    csg::MutexLock lock(mutex_);
    ++value_;
  }

  // BAD: guarded read with no lock held.
  std::size_t value() const { return value_; }

 private:
  mutable csg::Mutex mutex_;
  std::size_t value_ CSG_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return static_cast<int>(c.value());
}
