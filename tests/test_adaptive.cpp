#include "csg/adaptive/adaptive_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::adaptive {
namespace {

/// A function with a sharp localized feature: regular grids waste points on
/// the smooth regions, adaptivity concentrates them at the spike.
workloads::TestFunction spike(dim_t d) {
  return {"spike", "sharp localized bump", true, false,
          [d](const CoordVector& x) {
            real_t r2 = 0, w = 1;
            for (dim_t t = 0; t < d; ++t) {
              const real_t c = x[t] - real_t{0.31};
              r2 += c * c;
              w *= 4 * x[t] * (1 - x[t]);
            }
            return w * std::exp(-150 * r2);
          }};
}

TEST(AdaptiveGrid, RootOnlyConstruction) {
  AdaptiveSparseGrid g(3);
  EXPECT_EQ(g.num_points(), 1u);
  EXPECT_TRUE(g.contains(LevelVector(3, 0), IndexVector(3, 1)));
  EXPECT_EQ(g.max_level_sum(), 0u);
}

TEST(AdaptiveGrid, RegularInitMatchesRegularPointCount) {
  for (dim_t d : {1u, 2u, 4u}) {
    for (level_t n : {1u, 3u, 5u}) {
      AdaptiveSparseGrid g(d, n);
      EXPECT_EQ(g.num_points(), regular_grid_num_points(d, n))
          << "d=" << d << " n=" << n;
    }
  }
}

TEST(AdaptiveGrid, InsertAddsAncestorClosure) {
  AdaptiveSparseGrid g(2);
  // Inserting a deep point must pull in the whole ancestor lattice.
  const std::size_t added = g.insert({{2, 1}, {5, 3}});
  EXPECT_GT(added, 1u);
  // Every point's 1d parents must exist (closure invariant).
  g.for_each_node([&](const AdaptiveSparseGrid::Node& node) {
    for (dim_t t = 0; t < 2; ++t) {
      for (const bool right : {false, true}) {
        const Parent1d p =
            right ? right_parent_1d(node.point.level[t], node.point.index[t])
                  : left_parent_1d(node.point.level[t], node.point.index[t]);
        if (!p.is_boundary) {
          LevelVector l = node.point.level;
          IndexVector i = node.point.index;
          l[t] = p.level;
          i[t] = p.index;
          EXPECT_TRUE(g.contains(l, i));
        }
      }
    }
  });
}

TEST(AdaptiveGrid, InsertIsIdempotent) {
  AdaptiveSparseGrid g(2);
  g.insert({{1, 1}, {3, 1}});
  const std::size_t before = g.num_points();
  EXPECT_EQ(g.insert({{1, 1}, {3, 1}}), 0u);
  EXPECT_EQ(g.num_points(), before);
}

TEST(AdaptiveGrid, RefinePointAddsChildren) {
  AdaptiveSparseGrid g(2);
  const GridPoint root{{0, 0}, {1, 1}};
  const std::size_t added = g.refine_point(root);
  EXPECT_EQ(added, 4u);  // two children per dimension, no extra closure
  EXPECT_TRUE(g.contains(LevelVector{1, 0}, IndexVector{1, 1}));
  EXPECT_TRUE(g.contains(LevelVector{1, 0}, IndexVector{3, 1}));
  EXPECT_TRUE(g.contains(LevelVector{0, 1}, IndexVector{1, 1}));
  EXPECT_TRUE(g.contains(LevelVector{0, 1}, IndexVector{1, 3}));
}

TEST(AdaptiveGrid, RegularInitAgreesWithCompactEverywhere) {
  // Strong cross-validation: an adaptive grid initialized to the regular
  // point set must produce the identical interpolant.
  const dim_t d = 3;
  const level_t n = 4;
  const auto f = workloads::simulation_field(d);
  AdaptiveSparseGrid adaptive(d, n);
  adaptive.sample(f.f);
  adaptive.hierarchize();
  CompactStorage compact(d, n);
  compact.sample(f.f);
  hierarchize(compact);
  for (const CoordVector& x : workloads::uniform_points(d, 150, 33))
    EXPECT_NEAR(adaptive.evaluate(x), evaluate(compact, x), 1e-12);
}

TEST(AdaptiveGrid, SurplusesMatchCompactOnRegularInit) {
  const dim_t d = 2;
  const level_t n = 5;
  const auto f = workloads::gaussian_bump(d);
  AdaptiveSparseGrid adaptive(d, n);
  adaptive.sample(f.f);
  adaptive.hierarchize();
  CompactStorage compact(d, n);
  compact.sample(f.f);
  hierarchize(compact);
  adaptive.for_each_node([&](const AdaptiveSparseGrid::Node& node) {
    EXPECT_NEAR(node.surplus, compact.get(node.point.level, node.point.index),
                1e-12);
  });
}

TEST(AdaptiveGrid, InterpolatesNodalValuesExactly) {
  const dim_t d = 2;
  AdaptiveSparseGrid g(d, 3);
  // Make it genuinely adaptive: refine a corner region a few times.
  g.insert({{4, 0}, {31, 1}});
  g.insert({{2, 3}, {7, 15}});
  const auto f = workloads::oscillatory(d);
  g.sample(f.f);
  g.hierarchize();
  g.for_each_node([&](const AdaptiveSparseGrid::Node& node) {
    EXPECT_NEAR(g.evaluate(coordinates(node.point)), node.nodal, 1e-12);
  });
}

TEST(AdaptiveGrid, HierarchizeIsRepeatable) {
  AdaptiveSparseGrid g(2, 4);
  const auto f = workloads::parabola_product(2);
  g.sample(f.f);
  g.hierarchize();
  std::vector<real_t> first;
  g.for_each_node(
      [&](const AdaptiveSparseGrid::Node& n) { first.push_back(n.surplus); });
  g.hierarchize();
  std::size_t k = 0;
  g.for_each_node([&](const AdaptiveSparseGrid::Node& n) {
    EXPECT_EQ(n.surplus, first[k++]);
  });
}

TEST(AdaptiveGrid, RefineBySurplusTargetsTheSpike) {
  const dim_t d = 2;
  const auto f = spike(d);
  AdaptiveSparseGrid g(d, 3);
  g.refine_by_surplus(f.f, 1e-3, 32);
  // New deep points should cluster near the spike at (0.31, 0.31).
  level_t deepest = g.max_level_sum();
  EXPECT_GT(deepest, 2u);
  real_t far_deep = 0, near_deep = 0;
  g.for_each_node([&](const AdaptiveSparseGrid::Node& node) {
    if (node.point.level.l1_norm() < deepest) return;
    const CoordVector x = coordinates(node.point);
    const real_t dist = std::hypot(x[0] - 0.31, x[1] - 0.31);
    (dist < 0.3 ? near_deep : far_deep) += 1;
  });
  EXPECT_GT(near_deep, far_deep);
}

TEST(AdaptiveGrid, AdaptBeatsRegularGridOnSpikeFunction) {
  // The flexibility argument, quantified: for the same point budget the
  // adaptive grid reaches a lower max error than the regular grid.
  const dim_t d = 2;
  const auto f = spike(d);
  AdaptiveSparseGrid adaptive(d, 3);
  adaptive.adapt(f.f, 5e-4, /*max_points=*/1200);

  // Regular grid with at least as many points.
  level_t n = 3;
  while (regular_grid_num_points(d, n) < adaptive.num_points()) ++n;
  CompactStorage regular(d, n);
  regular.sample(f.f);
  hierarchize(regular);

  const auto probes = workloads::halton_points(d, 1500);
  real_t err_adaptive = 0, err_regular = 0;
  for (const CoordVector& x : probes) {
    err_adaptive = std::max(err_adaptive, std::abs(adaptive.evaluate(x) - f(x)));
    err_regular = std::max(err_regular, std::abs(evaluate(regular, x) - f(x)));
  }
  // The regular grid has >= the adaptive point count, yet loses on a
  // localized feature.
  EXPECT_LT(err_adaptive, err_regular)
      << "adaptive " << adaptive.num_points() << " pts vs regular "
      << regular.size() << " pts";
}

TEST(AdaptiveGrid, AdaptConvergesOnSmoothFunction) {
  const dim_t d = 2;
  const auto f = workloads::parabola_product(d);
  AdaptiveSparseGrid g(d, 2);
  const std::size_t rounds = g.adapt(f.f, 1e-2, 4000);
  EXPECT_GT(rounds, 0u);
  // Converged means: every point whose surplus still exceeds the threshold
  // has all its children in the grid (refining it again adds nothing) —
  // a point's own surplus is an intrinsic coefficient and never shrinks.
  g.for_each_node([&](const AdaptiveSparseGrid::Node& node) {
    if (std::abs(node.surplus) <= 1e-2) return;
    for (dim_t t = 0; t < d; ++t) {
      LevelVector l = node.point.level;
      l[t] += 1;
      IndexVector i = node.point.index;
      i[t] = left_child_index_1d(node.point.index[t]);
      EXPECT_TRUE(g.contains(l, i));
      i[t] = right_child_index_1d(node.point.index[t]);
      EXPECT_TRUE(g.contains(l, i));
    }
  });
  // And the refined interpolant is accurate on the smooth target.
  real_t err = 0;
  for (const CoordVector& x : workloads::halton_points(d, 500))
    err = std::max(err, std::abs(g.evaluate(x) - f(x)));
  EXPECT_LT(err, 2e-2);
}

TEST(AdaptiveGrid, MemoryReflectsFlexibilityCost) {
  // Per point, the hash-backed adaptive grid pays far more than the
  // compact structure's 8 bytes — the Sec. 7 trade-off.
  AdaptiveSparseGrid g(3, 5);
  const double per_point = static_cast<double>(g.memory_bytes()) /
                           static_cast<double>(g.num_points());
  EXPECT_GT(per_point, 3 * sizeof(real_t));
}

TEST(AdaptiveGridDeath, RefiningAbsentPointAborts) {
  AdaptiveSparseGrid g(2);
  EXPECT_DEATH(g.refine_point({{3, 3}, {1, 1}}), "precondition");
}

}  // namespace
}  // namespace csg::adaptive
