#include "csg/core/evaluation_plan.hpp"

#include <gtest/gtest.h>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg {
namespace {

CompactStorage compressed(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::simulation_field(d).f);
  hierarchize(s);
  return s;
}

TEST(EvaluationPlan, FlattensTheFullEnumeration) {
  const RegularSparseGrid grid(4, 5);
  const EvaluationPlan plan(grid);
  EXPECT_EQ(plan.dim(), 4u);
  EXPECT_EQ(plan.level(), 5u);
  EXPECT_EQ(plan.num_points(), grid.num_points());
  std::size_t expected = 0;
  for (level_t j = 0; j < grid.level(); ++j)
    expected += static_cast<std::size_t>(grid.subspaces_in_group(j));
  EXPECT_EQ(plan.subspace_count(), expected);
}

TEST(EvaluationPlan, EntriesMatchGridEnumerationAndOffsets) {
  const RegularSparseGrid grid(3, 6);
  const EvaluationPlan plan(grid);
  std::size_t s = 0;
  for (level_t j = 0; j < grid.level(); ++j)
    for (const LevelVector& l : LevelRange(3, j)) {
      ASSERT_LT(s, plan.subspace_count());
      EXPECT_EQ(plan.level_of(s), l) << "subspace " << s;
      EXPECT_EQ(plan.offsets()[s], grid.subspace_offset(l)) << "subspace " << s;
      ++s;
    }
  EXPECT_EQ(s, plan.subspace_count());
}

TEST(EvaluationPlan, SharedCacheReturnsOneInstancePerShape) {
  const RegularSparseGrid a(3, 4), b(3, 4), c(3, 5);
  EXPECT_EQ(EvaluationPlan::shared(a).get(), EvaluationPlan::shared(b).get());
  EXPECT_NE(EvaluationPlan::shared(a).get(), EvaluationPlan::shared(c).get());
}

TEST(EvaluationPlan, MemoryFootprintIsSmall) {
  // d=10, n=6 — the plan metadata must stay far below the coefficient
  // payload it accelerates.
  const RegularSparseGrid grid(10, 6);
  const EvaluationPlan plan(grid);
  EXPECT_LT(plan.memory_bytes(),
            static_cast<std::size_t>(grid.num_points()) * sizeof(real_t));
}

struct DimLevel {
  dim_t d;
  level_t n;
};

class PlanParity : public ::testing::TestWithParam<DimLevel> {};

// All plan-based paths must agree bit-for-bit with the pre-plan scalar walk
// (first_level/advance_level per call), which is retained as
// evaluate_span_walk.
TEST_P(PlanParity, PlanPathsAreBitIdenticalToTheScalarWalk) {
  const auto [d, n] = GetParam();
  const CompactStorage s = compressed(d, n);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  const auto pts = workloads::uniform_points(d, 97, 13);

  std::vector<real_t> reference(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    reference[p] = evaluate_span_walk(s.grid(), coeffs, pts[p]);

  const EvaluationPlan plan(s.grid());
  for (std::size_t p = 0; p < pts.size(); ++p) {
    EXPECT_EQ(evaluate_span(plan, coeffs, pts[p]), reference[p]) << p;
    EXPECT_EQ(evaluate_span(s.grid(), coeffs, pts[p]), reference[p]) << p;
    EXPECT_EQ(evaluate(s, pts[p]), reference[p]) << p;
  }

  EXPECT_EQ(evaluate_many(s, pts), reference);
  for (std::size_t block : {1u, 3u, 64u, 97u, 1000u}) {
    EXPECT_EQ(evaluate_many_blocked(s, pts, block), reference)
        << "block " << block;
    EXPECT_EQ(evaluate_many_blocked(plan, coeffs, pts, block), reference)
        << "block " << block;
  }
}

TEST_P(PlanParity, OmpBlockedIsBitIdenticalForAnyThreadAndBlockCount) {
  const auto [d, n] = GetParam();
  const CompactStorage s = compressed(d, n);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  const auto pts = workloads::uniform_points(d, 131, 29);
  std::vector<real_t> reference(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    reference[p] = evaluate_span_walk(s.grid(), coeffs, pts[p]);
  for (int threads : {1, 2, 4, 7})
    for (std::size_t block : {1u, 16u, 64u, 131u, 500u})
      EXPECT_EQ(parallel::omp_evaluate_many_blocked(s, pts, block, threads),
                reference)
          << "threads " << threads << " block " << block;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanParity,
    ::testing::Values(DimLevel{1, 6}, DimLevel{2, 6}, DimLevel{5, 5},
                      DimLevel{10, 3}),
    [](const ::testing::TestParamInfo<DimLevel>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(EvaluationPlanDeath, DimensionMismatchAborts) {
  const RegularSparseGrid grid(2, 3);
  const EvaluationPlan plan(grid);
  const std::vector<real_t> coeffs(grid.num_points(), 0);
  EXPECT_DEATH((void)evaluate_span(plan, coeffs, CoordVector{0.5}),
               "precondition");
}

TEST(EvaluationPlanDeath, ShortCoefficientSpanAborts) {
  const RegularSparseGrid grid(2, 3);
  const EvaluationPlan plan(grid);
  const std::vector<real_t> coeffs(grid.num_points() - 1, 0);
  EXPECT_DEATH((void)evaluate_span(plan, coeffs, CoordVector{0.5, 0.5}),
               "precondition");
}

}  // namespace
}  // namespace csg
