#include "csg/core/evaluation_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg {
namespace {

CompactStorage compressed(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::simulation_field(d).f);
  hierarchize(s);
  return s;
}

TEST(EvaluationPlan, FlattensTheFullEnumeration) {
  const RegularSparseGrid grid(4, 5);
  const EvaluationPlan plan(grid);
  EXPECT_EQ(plan.dim(), 4u);
  EXPECT_EQ(plan.level(), 5u);
  EXPECT_EQ(plan.num_points(), grid.num_points());
  std::size_t expected = 0;
  for (level_t j = 0; j < grid.level(); ++j)
    expected += static_cast<std::size_t>(grid.subspaces_in_group(j));
  EXPECT_EQ(plan.subspace_count(), expected);
}

TEST(EvaluationPlan, EntriesMatchGridEnumerationAndOffsets) {
  const RegularSparseGrid grid(3, 6);
  const EvaluationPlan plan(grid);
  std::size_t s = 0;
  for (level_t j = 0; j < grid.level(); ++j)
    for (const LevelVector& l : LevelRange(3, j)) {
      ASSERT_LT(s, plan.subspace_count());
      EXPECT_EQ(plan.level_of(s), l) << "subspace " << s;
      EXPECT_EQ(plan.offsets()[s], grid.subspace_offset(l)) << "subspace " << s;
      ++s;
    }
  EXPECT_EQ(s, plan.subspace_count());
}

/// Tests below mutate the process-global cache; restore its default shape
/// on exit so suites sharing this process see a clean cache.
struct PlanCacheGuard {
  ~PlanCacheGuard() {
    EvaluationPlan::shared_cache_clear();
    EvaluationPlan::shared_cache_set_capacity(
        EvaluationPlan::kDefaultSharedCacheCap);
  }
};

TEST(EvaluationPlan, SharedCacheReturnsOneInstancePerShape) {
  const RegularSparseGrid a(3, 4), b(3, 4), c(3, 5);
  EXPECT_EQ(EvaluationPlan::shared(a).get(), EvaluationPlan::shared(b).get());
  EXPECT_NE(EvaluationPlan::shared(a).get(), EvaluationPlan::shared(c).get());
}

TEST(EvaluationPlan, SharedCacheCountsHitsAndMisses) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  const RegularSparseGrid grid(4, 4);
  (void)EvaluationPlan::shared(grid);
  (void)EvaluationPlan::shared(grid);
  (void)EvaluationPlan::shared(grid);
  const auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(EvaluationPlan, SharedCacheEvictsLeastRecentlyUsed) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  EvaluationPlan::shared_cache_set_capacity(2);

  const RegularSparseGrid a(2, 2), b(2, 3), c(2, 4);
  const auto plan_a = EvaluationPlan::shared(a);
  (void)EvaluationPlan::shared(b);
  // Touch a: recency order is now [a, b]. Inserting c must evict b.
  EXPECT_EQ(EvaluationPlan::shared(a).get(), plan_a.get());
  (void)EvaluationPlan::shared(c);

  auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // a survived (hit, same instance); b was evicted (miss, fresh build).
  EXPECT_EQ(EvaluationPlan::shared(a).get(), plan_a.get());
  const std::uint64_t misses_before =
      EvaluationPlan::shared_cache_stats().misses;
  (void)EvaluationPlan::shared(b);
  EXPECT_EQ(EvaluationPlan::shared_cache_stats().misses, misses_before + 1);
}

TEST(EvaluationPlan, SharedCacheEvictionKeepsOutstandingPlansAlive) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  EvaluationPlan::shared_cache_set_capacity(1);

  const RegularSparseGrid a(3, 3), b(3, 4);
  const auto pinned = EvaluationPlan::shared(a);
  (void)EvaluationPlan::shared(b);  // evicts a from the cache
  EXPECT_EQ(EvaluationPlan::shared_cache_stats().size, 1u);

  // The evicted plan is still fully usable by its holder.
  EXPECT_EQ(pinned->dim(), 3u);
  EXPECT_EQ(pinned->num_points(), a.num_points());
  const std::vector<real_t> coeffs(a.num_points(), 0.5);
  (void)evaluate_span(*pinned, coeffs, CoordVector{0.5, 0.5, 0.5});
}

TEST(EvaluationPlan, SharedCacheMemoryBytesReflectsResidentPlansOnly) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  EvaluationPlan::shared_cache_set_capacity(8);

  const RegularSparseGrid a(4, 5), b(5, 5), c(6, 5);
  const auto pa = EvaluationPlan::shared(a);
  const auto pb = EvaluationPlan::shared(b);
  const auto pc = EvaluationPlan::shared(c);
  const std::size_t all_bytes =
      pa->memory_bytes() + pb->memory_bytes() + pc->memory_bytes();
  EXPECT_EQ(EvaluationPlan::shared_cache_stats().memory_bytes, all_bytes);

  // Shrinking the capacity evicts down to the most recent entry, and the
  // reported bytes drop with it — live state, not high-water capacity.
  EvaluationPlan::shared_cache_set_capacity(1);
  const auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.memory_bytes, pc->memory_bytes());
  EXPECT_LT(stats.memory_bytes, all_bytes);
}

TEST(EvaluationPlan, SharedCacheClearResetsStateButNotHolders) {
  PlanCacheGuard guard;
  const RegularSparseGrid grid(3, 5);
  const auto held = EvaluationPlan::shared(grid);
  EvaluationPlan::shared_cache_clear();
  const auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0u);
  EXPECT_EQ(stats.memory_bytes, 0u);
  // Held plan survives; a fresh fetch builds a new instance.
  EXPECT_EQ(held->num_points(), grid.num_points());
  EXPECT_NE(EvaluationPlan::shared(grid).get(), held.get());
}

// Regression for the unbounded-growth bug: a long-lived process touching
// many (d, n) shapes must hold at most `capacity` plans, with the reported
// footprint bounded by the resident set — not by the shape history.
TEST(EvaluationPlan, SharedCacheStaysBoundedUnderManyShapes) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  constexpr std::size_t kCap = 8;
  EvaluationPlan::shared_cache_set_capacity(kCap);

  std::size_t shapes = 0;
  std::size_t max_resident_bytes = 0;
  for (dim_t d = 1; d <= 10; ++d)
    for (level_t n = 1; n <= 8; ++n) {
      (void)EvaluationPlan::shared(RegularSparseGrid(d, n));
      ++shapes;
      const auto stats = EvaluationPlan::shared_cache_stats();
      ASSERT_LE(stats.size, kCap) << "d=" << d << " n=" << n;
      max_resident_bytes = std::max(max_resident_bytes, stats.memory_bytes);
    }

  const auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(shapes, 80u);
  EXPECT_EQ(stats.size, kCap);
  EXPECT_EQ(stats.misses, shapes);
  EXPECT_EQ(stats.evictions, shapes - kCap);
  // The whole 80-shape history would dwarf the bounded resident set; with
  // the old unbounded map this held every plan ever built.
  EXPECT_LE(stats.memory_bytes, max_resident_bytes);
}

TEST(EvaluationPlanDeath, ZeroCapacityRejected) {
  EXPECT_DEATH(EvaluationPlan::shared_cache_set_capacity(0), "precondition");
}

TEST(EvaluationPlan, MemoryFootprintIsSmall) {
  // d=10, n=6 — the plan metadata must stay far below the coefficient
  // payload it accelerates.
  const RegularSparseGrid grid(10, 6);
  const EvaluationPlan plan(grid);
  EXPECT_LT(plan.memory_bytes(),
            static_cast<std::size_t>(grid.num_points()) * sizeof(real_t));
}

struct DimLevel {
  dim_t d;
  level_t n;
};

class PlanParity : public ::testing::TestWithParam<DimLevel> {};

// All plan-based paths must agree bit-for-bit with the pre-plan scalar walk
// (first_level/advance_level per call), which is retained as
// evaluate_span_walk.
TEST_P(PlanParity, PlanPathsAreBitIdenticalToTheScalarWalk) {
  const auto [d, n] = GetParam();
  const CompactStorage s = compressed(d, n);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  const auto pts = workloads::uniform_points(d, 97, 13);

  std::vector<real_t> reference(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    reference[p] = evaluate_span_walk(s.grid(), coeffs, pts[p]);

  const EvaluationPlan plan(s.grid());
  for (std::size_t p = 0; p < pts.size(); ++p) {
    EXPECT_EQ(evaluate_span(plan, coeffs, pts[p]), reference[p]) << p;
    EXPECT_EQ(evaluate_span(s.grid(), coeffs, pts[p]), reference[p]) << p;
    EXPECT_EQ(evaluate(s, pts[p]), reference[p]) << p;
  }

  EXPECT_EQ(evaluate_many(s, pts), reference);
  for (std::size_t block : {1u, 3u, 64u, 97u, 1000u}) {
    EXPECT_EQ(evaluate_many_blocked(s, pts, block), reference)
        << "block " << block;
    EXPECT_EQ(evaluate_many_blocked(plan, coeffs, pts, block), reference)
        << "block " << block;
  }
}

TEST_P(PlanParity, OmpBlockedIsBitIdenticalForAnyThreadAndBlockCount) {
  const auto [d, n] = GetParam();
  const CompactStorage s = compressed(d, n);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  const auto pts = workloads::uniform_points(d, 131, 29);
  std::vector<real_t> reference(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    reference[p] = evaluate_span_walk(s.grid(), coeffs, pts[p]);
  for (int threads : {1, 2, 4, 7})
    for (std::size_t block : {1u, 16u, 64u, 131u, 500u})
      EXPECT_EQ(parallel::omp_evaluate_many_blocked(s, pts, block, threads),
                reference)
          << "threads " << threads << " block " << block;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanParity,
    ::testing::Values(DimLevel{1, 6}, DimLevel{2, 6}, DimLevel{5, 5},
                      DimLevel{10, 3}),
    [](const ::testing::TestParamInfo<DimLevel>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(EvaluationPlanDeath, DimensionMismatchAborts) {
  const RegularSparseGrid grid(2, 3);
  const EvaluationPlan plan(grid);
  const std::vector<real_t> coeffs(grid.num_points(), 0);
  EXPECT_DEATH((void)evaluate_span(plan, coeffs, CoordVector{0.5}),
               "precondition");
}

TEST(EvaluationPlanDeath, ShortCoefficientSpanAborts) {
  const RegularSparseGrid grid(2, 3);
  const EvaluationPlan plan(grid);
  const std::vector<real_t> coeffs(grid.num_points() - 1, 0);
  EXPECT_DEATH((void)evaluate_span(plan, coeffs, CoordVector{0.5, 0.5}),
               "precondition");
}

}  // namespace
}  // namespace csg
